package sim

import (
	"math"
	"math/rand"
	"time"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/fusion"
	"safeplan/internal/guard"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/sensor"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
	"safeplan/internal/xrand"
)

// StepInput carries externally streamed events into one control step of a
// resumable Stepper.  The zero value reproduces the closed-loop batch
// simulation exactly: the internal world generates its own V2V broadcasts
// and sensor readings.  A streaming session (cmd/serve) injects received
// events here; they are fused *before* this step's internally generated
// traffic, so a zero input leaves the byte-exact legacy behaviour intact.
type StepInput struct {
	// Messages are additional V2V messages delivered to the fusion filter
	// at the top of this step, bypassing the simulated channel (a streamed
	// message already survived its real network).  In the multi-vehicle
	// engine the Sender field (1-based track index) routes each message to
	// its track; out-of-range senders are ignored.
	Messages []comms.Message
	// Readings are additional sensor readings fused at the top of this
	// step.  In the multi-vehicle engine the Target field (1-based track
	// index) routes each reading; out-of-range targets are ignored.
	Readings []sensor.Reading
}

// StepOutcome reports one executed control step of a Stepper.
type StepOutcome struct {
	// T is the simulation time of the executed step [s]; Step is its
	// zero-based index.
	T    float64
	Step int

	// Accel is the executed ego command; Emergency reports whether κ_e
	// (or a guard fallback) produced it.
	Accel     float64
	Emergency bool

	// EgoP and EgoV are the ego state *after* the step.
	EgoP, EgoV float64

	// Done is set on the terminal step: collision, target reached, or —
	// with neither flag below — horizon timeout.
	Done     bool
	Collided bool
	Reached  bool
}

// Stepper is the resumable single-vehicle episode engine: it owns every
// piece of per-episode state the closed Run loop used to keep on its
// stack — the channel, sensor, fusion filter, guard state machine, RNG
// streams, and the scratch arena — and advances one control step per Step
// call.  Run is a thin loop over it (the parity tests pin byte-identical
// results), and long-running services (cmd/serve) hold one Stepper per
// live session, feeding it streamed events between calls.
//
// A Stepper is not safe for concurrent use.  When Options.Scratch is set
// the Stepper itself is pooled inside the arena and stays valid only until
// the next NewStepper/Run call on the same arena — the same lifetime
// discipline the arena's other components already require.
type Stepper struct {
	cfg   Config
	agent core.Agent
	opts  Options

	sc  leftturn.Config
	mon monitor.Monitor
	gs  *GuardedStep

	driver   *traffic.Driver
	channel  *comms.Channel
	sens     *sensor.Model
	filt     *fusion.Filter
	sensProc disturb.SensorProcess

	sensDropRng *rand.Rand

	ego, onc dynamics.State
	oncA     float64

	msgTick, sensTick comms.Ticker
	msgBuf            []comms.Message
	lastMeas          sensor.Reading
	haveMeas          bool

	coll telemetry.Collector

	// Hot-path closures, built once per Stepper (not per episode): they
	// capture only the receiver pointer and read its fields at call time,
	// so a pooled Stepper re-runs episodes without re-allocating them.
	plan   func() (float64, bool)
	emerg  func() float64
	env    func() (float64, float64, bool)
	certFn func() (float64, float64, bool)

	// Verified-mode state (Config.Certify); certOn gates every use, so a
	// disabled run pays one bool check per step.  cert.scr survives reset
	// like the closures, keeping pooled verified episodes allocation-free.
	cert   certifier
	certOn bool

	t    float64
	know core.Knowledge

	dt       float64
	maxSteps int
	step     int

	res      Result
	done     bool
	finished bool
	err      error
}

// NewStepper validates cfg and builds a resumable episode engine
// positioned before step 0.  It performs exactly the per-episode setup of
// the closed loop — same RNG derivation order, same component
// construction — so a Stepper-driven episode is byte-identical to the
// historical Run.
func NewStepper(cfg Config, agent core.Agent, opts Options) (*Stepper, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	sh := opts.Scratch
	sh.Begin()
	st := sh.stepper()
	st.reset(cfg, agent, opts)

	master := sh.RNG(opts.Seed)
	// Independent streams, seeded deterministically from the master — the
	// seeds draw in the historical order (driver, channel, sensor, init,
	// sensor-drop, then the disturbance stream last so legacy
	// configurations keep their exact per-seed behaviour), but the derived
	// sources seed together through xrand.SeedMany, which interleaves the
	// generator warm-up across lanes.  xrand.Source is a bit-exact
	// math/rand replica, so every derived stream is byte-identical to the
	// historical per-source reseed (the goldens and BENCH_seed pin this).
	var seeds [6]int64
	nStreams := 5
	if cfg.SensorDisturb != nil {
		nStreams = 6
	}
	for i := 0; i < nStreams; i++ {
		seeds[i] = master.Int63()
	}
	srcs, rngs := sh.XRands(nStreams)
	xrand.SeedMany(srcs, seeds[:nStreams])
	driverRng, chanRng, sensRng, initRng := rngs[0], rngs[1], rngs[2], rngs[3]
	st.sensDropRng = rngs[4]
	if cfg.SensorDisturb != nil {
		st.sensProc = cfg.SensorDisturb.NewSensor(rngs[5])
	}
	// Planner-fault streams derive after the disturbance streams, under the
	// same compatibility rule.
	gs, err := NewGuardedStep(cfg.Guard, cfg.PlannerFault, cfg.Scenario.Ego, master)
	if err != nil {
		return nil, err
	}
	st.gs = gs
	// The guard validates executed commands against the monitor's
	// safe-action envelope, recomputed from the sound estimate (the only
	// basis with a soundness guarantee, regardless of any agent-side
	// monitor ablation).
	st.mon = monitor.New(cfg.Scenario)

	st.driver, err = sh.Driver(cfg.Driver, driverRng)
	if err != nil {
		return nil, err
	}
	st.channel, err = sh.Channel(cfg.Comms, chanRng)
	if err != nil {
		return nil, err
	}
	st.sens, err = sh.Sensor(cfg.Sensor, sensRng)
	if err != nil {
		return nil, err
	}
	st.filt, err = sh.Fusion(fusion.Config{
		Limits:    cfg.Scenario.Oncoming,
		Sensor:    cfg.Sensor,
		UseKalman: cfg.InfoFilter,
		Replay:    cfg.InfoFilter && !cfg.NoReplay,
	})
	if err != nil {
		return nil, err
	}

	sc := cfg.Scenario
	st.sc = sc
	st.ego = sc.EgoInit
	st.onc = sc.OncomingInit
	if cfg.OncomingStartSpread > 0 {
		st.onc.P -= initRng.Float64() * cfg.OncomingStartSpread
	}
	if cfg.OncomingSpeedMax > 0 {
		st.onc.V = cfg.OncomingSpeedMin + initRng.Float64()*(cfg.OncomingSpeedMax-cfg.OncomingSpeedMin)
	}

	// The scenario starts with a handshake broadcast: the initial oncoming
	// state is known exactly (paper §IV assumes C0 obtains p1, v1; all
	// later knowledge flows through the disturbed channel and sensors).
	st.filt.InitExact(0, st.onc, 0)

	st.msgTick = comms.MakeTicker(cfg.DtM)
	st.msgTick.Due(0) // initial broadcast consumed by InitExact
	st.sensTick = comms.MakeTicker(cfg.DtS)
	st.sensTick.Due(0)

	st.msgBuf = sh.MsgBuf()
	st.coll = opts.Collector

	st.dt = sc.DtC
	st.maxSteps = int(horizon/st.dt) + 1

	if cfg.Certify != nil {
		if err := st.cert.init(cfg.Certify, sc.Ego, agent); err != nil {
			return nil, err
		}
		st.certOn = true
	}

	if st.plan == nil {
		// Built once per pooled Stepper; the closures read the receiver's
		// fields, so reuse across episodes adds no per-episode allocation.
		st.plan = func() (float64, bool) { return st.agent.Accel(st.t, st.ego, st.know) }
		st.emerg = func() float64 { return st.sc.EmergencyAccel(st.ego) }
		st.env = func() (float64, float64, bool) {
			return st.mon.Assess(st.ego, st.sc.ConservativeWindow(st.know.Sound)).Envelope(st.sc.Ego)
		}
		st.certFn = func() (float64, float64, bool) {
			st.cert.lo, st.cert.hi, st.cert.ok = st.cert.rangeAt(st.t, st.ego, st.sc, st.know)
			return st.cert.lo, st.cert.hi, st.cert.ok
		}
	}
	if st.certOn && st.gs != nil {
		st.gs.SetCertifiedRange(st.certFn, st.cert.tol)
	}
	return st, nil
}

// reset clears per-episode state while keeping the reusable closures and
// the IBP scratch.
func (st *Stepper) reset(cfg Config, agent core.Agent, opts Options) {
	plan, emerg, env, certFn := st.plan, st.emerg, st.env, st.certFn
	certScr := st.cert.scr
	*st = Stepper{plan: plan, emerg: emerg, env: env, certFn: certFn}
	st.cert.scr = certScr
	st.cfg = cfg
	st.agent = agent
	st.opts = opts
}

// Done reports whether the episode has terminated (or a step invariant
// failed); further Step calls are no-ops returning the terminal outcome.
func (st *Stepper) Done() bool { return st.done || st.err != nil }

// Err returns the step-invariant violation that aborted the episode, if
// any.
func (st *Stepper) Err() error { return st.err }

// Step advances the episode by one control step.  The input can inject
// externally streamed V2V messages and sensor readings (see StepInput); a
// zero input reproduces the batch loop byte for byte.  After the terminal
// step (or after an error) further calls return the terminal outcome
// unchanged.
func (st *Stepper) Step(in StepInput) (StepOutcome, error) {
	if st.done || st.err != nil {
		return st.terminalOutcome(), st.err
	}
	if st.step >= st.maxSteps {
		// Timeout: neither target nor violation — η = 0.
		st.done = true
		return st.terminalOutcome(), nil
	}
	step := st.step
	st.t = float64(step) * st.dt
	t := st.t
	cfg := &st.cfg
	sc := st.sc
	res := &st.res

	// 0. Externally streamed events (sessions only; empty in batch runs).
	for _, m := range in.Messages {
		st.filt.OnMessage(m)
	}
	for _, r := range in.Readings {
		st.filt.OnReading(r)
	}

	// 1. Periodic V2V broadcast of C1's current state.
	if at, ok := st.msgTick.Due(t); ok {
		st.channel.Send(comms.Message{Sender: 1, T: at, P: st.onc.P, V: st.onc.V, A: st.oncA})
	}
	// 2. Deliver whatever the channel releases at this instant.
	st.msgBuf = st.channel.PollAppend(t, st.msgBuf[:0])
	for _, m := range st.msgBuf {
		st.filt.OnMessage(m)
	}
	// 3. Periodic onboard sensing (subject to injected dropout and the
	// sensor disturbance model).
	if at, ok := st.sensTick.Due(t); ok {
		drop := cfg.SensorDropProb > 0 && st.sensDropRng.Float64() < cfg.SensorDropProb
		var bias float64
		if st.sensProc != nil {
			d := st.sensProc.Next(at)
			drop = drop || d.Drop
			bias = d.Bias
		}
		if !drop {
			st.lastMeas = st.sens.MeasureBiased(1, at, st.onc, st.oncA, bias)
			st.haveMeas = true
			st.filt.OnReading(st.lastMeas)
		}
	}

	// 4. Fuse and plan.
	est := st.filt.EstimateAt(t)
	if !est.P.Contains(st.onc.P) || !est.V.Contains(st.onc.V) {
		res.FusedIntervalMisses++
	}
	if !est.SoundP.Contains(st.onc.P) || !est.SoundV.Contains(st.onc.V) {
		res.SoundViolations++
	}
	st.know = core.Knowledge{
		Sound: leftturn.OncomingEstimate{
			P: est.SoundP, V: est.SoundV,
			PointP: est.PointP, PointV: est.PointV,
			A: est.A,
		},
		Fused: leftturn.OncomingEstimate{
			P: est.P, V: est.V,
			PointP: est.PointP, PointV: est.PointV,
			A: est.A,
		},
	}
	var a0 float64
	var emergency bool
	var gres guard.StepResult
	var start time.Time
	if st.coll != nil {
		start = time.Now()
	}
	if st.certOn {
		st.cert.lo, st.cert.hi, st.cert.ok = 0, 0, false
	}
	if st.gs != nil {
		// The guard runs the certified-range cross-check itself (armed via
		// SetCertifiedRange) so misses land in its fault accounting.
		a0, emergency, gres = st.gs.Step(t, st.plan, st.emerg, st.env)
	} else {
		a0, emergency = st.plan()
		if st.certOn && !emergency {
			if lo, hi, ok := st.certFn(); ok {
				res.CertifiedSteps++
				if a0 < lo-st.cert.tol || a0 > hi+st.cert.tol {
					res.CertifiedRangeMisses++
					gres.CertifiedMiss = true
				}
			}
		}
	}
	if st.coll != nil {
		var certW float64
		if st.cert.ok {
			certW = st.cert.hi - st.cert.lo
		}
		st.coll.OnStep(telemetry.StepProbe{
			T:          t,
			Emergency:  emergency,
			SoundWidth: est.SoundP.Width(),
			FusedWidth: est.P.Width(),
			ConsWidth:  sc.ConservativeWindow(st.know.Fused).Width(),
			AggrWidth:  sc.AggressiveWindow(st.know.Fused).Width(),
			PlannerNs:  time.Since(start).Nanoseconds(),
			CertWidth:  certW,
			CertMiss:   gres.CertifiedMiss,
		})
		if st.gs != nil {
			st.gs.Report(st.coll, t, gres)
		}
	}
	if emergency {
		res.EmergencySteps++
	}
	if len(st.opts.Invariants) > 0 {
		si := StepInfo{
			T: t, Ego: st.ego, Other: st.onc, OtherA: st.oncA,
			Est: est, Accel: a0, Emergency: emergency,
		}
		if st.gs != nil {
			st.gs.Annotate(&si, gres)
		}
		if ierr := CheckStepInvariants(st.opts.Invariants, si); ierr != nil {
			st.err = ierr
			return st.terminalOutcome(), ierr
		}
	}

	if st.opts.Trace {
		cons := sc.ConservativeWindow(st.know.Fused)
		aggr := sc.AggressiveWindow(st.know.Fused)
		soundW := sc.ConservativeWindow(st.know.Sound)
		s := Sample{
			T:    t,
			EgoP: st.ego.P, EgoV: st.ego.V, EgoA: a0,
			OncP: st.onc.P, OncV: st.onc.V, OncA: st.oncA,
			MeasP: math.NaN(), MeasV: math.NaN(),
			EstP: est.PointP, EstV: est.PointV,
			EstPLo: est.P.Lo, EstPHi: est.P.Hi,
			EstVLo: est.V.Lo, EstVHi: est.V.Hi,
			ConsLo: cons.Lo, ConsHi: cons.Hi,
			AggrLo: aggr.Lo, AggrHi: aggr.Hi,
			SoundPLo: est.SoundP.Lo, SoundPHi: est.SoundP.Hi,
			SoundVLo: est.SoundV.Lo, SoundVHi: est.SoundV.Hi,
			SoundLo: soundW.Lo, SoundHi: soundW.Hi,
			Emergency: emergency,
		}
		if st.haveMeas {
			s.MeasP, s.MeasV = st.lastMeas.P, st.lastMeas.V
		}
		res.Trace = append(res.Trace, s)
	}

	// 5. Advance the world.
	var behavA float64
	if len(cfg.OncomingScript) > 0 {
		behavA = ScriptAccel(cfg.OncomingScript, step)
	} else {
		behavA = st.driver.Accel(t, st.onc)
	}
	st.ego, _ = dynamics.Step(st.ego, a0, st.dt, sc.Ego)
	st.onc, st.oncA = dynamics.Step(st.onc, behavA, st.dt, sc.Oncoming)
	res.Steps++
	st.step++

	out := StepOutcome{
		T: t, Step: step,
		Accel: a0, Emergency: emergency,
		EgoP: st.ego.P, EgoV: st.ego.V,
	}

	// 6. Outcome checks.
	if sc.Collision(st.ego, st.onc) {
		res.Collided = true
		res.Eta = -1
		st.done = true
		out.Done, out.Collided = true, true
		return out, nil
	}
	if sc.ReachedTarget(st.ego) {
		res.Reached = true
		res.ReachTime = t + st.dt
		res.Eta = 1 / res.ReachTime
		st.done = true
		out.Done, out.Reached = true, true
		return out, nil
	}
	if st.step >= st.maxSteps {
		st.done = true
		out.Done = true
	}
	return out, nil
}

// terminalOutcome summarizes a finished (or failed) episode for repeated
// Step calls past the end.
func (st *Stepper) terminalOutcome() StepOutcome {
	return StepOutcome{
		T: st.t, Step: st.step,
		EgoP: st.ego.P, EgoV: st.ego.V,
		Done: true, Collided: st.res.Collided, Reached: st.res.Reached,
	}
}

// Finish finalizes the episode: it reports the outcome to the collector,
// folds the guard's episode statistics into the result, and runs the
// episode-level invariant checks (skipped when a step already failed) —
// exactly the bookkeeping the closed loop performed in its deferred
// epilogue, in the same order.  Finish is idempotent; an abandoned session
// may call it mid-episode to obtain the partial result.
func (st *Stepper) Finish() (Result, error) {
	if st.finished {
		return st.res, st.err
	}
	st.finished = true
	ReportOutcome(st.coll, st.opts.Seed, &st.res)
	if st.gs != nil {
		st.res.Guard = st.gs.Stats()
		// The guard owns the cross-check on guarded runs; fold its
		// counters so Result reads the same either way.
		st.res.CertifiedSteps += st.res.Guard.CertifiedSteps
		st.res.CertifiedRangeMisses += st.res.Guard.CertifiedRangeMisses
	}
	if st.err == nil && len(st.opts.Invariants) > 0 {
		st.err = CheckEpisodeInvariants(st.opts.Invariants, &st.res)
	}
	return st.res, st.err
}
