package sim

import (
	"math/rand"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/fusion"
	"safeplan/internal/interval"
	"safeplan/internal/sensor"
	"safeplan/internal/traffic"
	"safeplan/internal/xrand"
)

// Scratch is an episode-scoped arena: it owns the per-episode objects the
// step loops would otherwise allocate fresh every episode (derived random
// streams, the channel, sensor model, drivers, fusion filter, and the Poll
// message buffer), and hands them back reset.  Reusing a Scratch across
// episodes makes steady-state episodes allocation-free while staying
// bit-identical to the allocate-fresh path: every component's Reset draws
// from the parent rng in exactly the order its constructor does, and every
// derived rand.Rand is reseeded rather than recreated (reseeding a
// math/rand source reproduces the exact stream of a fresh one).
//
// A Scratch serves one episode at a time and is not safe for concurrent
// use.  Campaign workers draw one from a pool per shard, never sharing it
// between goroutines; per-episode determinism is untouched because nothing
// in the arena carries state across Begin calls.
//
// All acquisition methods tolerate a nil receiver by allocating fresh
// objects, so runner code is identical with and without a Scratch.
type Scratch struct {
	rngs []*rand.Rand
	nRng int

	// Paired xrand sources and the rand.Rands wrapping them, for the
	// batch-seeded derived streams (see XRands).  Reseeded in place every
	// episode, so no per-use counter is needed.
	xsrcs  []*xrand.Source
	xrands []*rand.Rand

	channels []*comms.Channel
	nChan    int

	sensors []*sensor.Model
	nSens   int

	drivers []*traffic.Driver
	nDrv    int

	stopgos []*traffic.StopAndGo
	nStop   int

	filters []*fusion.Filter
	nFilt   int

	msgBuf []comms.Message

	// RunMulti per-track working storage.
	tracks []oncomingTrack
	knows  []core.Knowledge
	ests   []fusion.Estimate

	// Per-track passing-window storage for the multi-vehicle telemetry
	// probe (collector-attached runs only).
	cons []interval.Interval
	aggr []interval.Interval

	// Pooled resumable engines.  A Stepper carries its own hot-path
	// closures (built once, capturing only the stepper pointer), so
	// reusing the object keeps repeat episodes allocation-free; the arena
	// discipline is unchanged — one episode at a time per Scratch.
	pooledStepper      *Stepper
	pooledMultiStepper *MultiStepper
	// extEngine is the same slot for sibling scenario packages
	// (internal/carfollow), which sim cannot name without an import cycle.
	extEngine any
}

// NewScratch returns an empty arena; components are created lazily on first
// use and reused afterwards.
func NewScratch() *Scratch { return &Scratch{} }

// Begin readies the arena for a new episode, releasing every component
// acquired by the previous one back into the reuse pools.  Episode runners
// call it once on entry; it is a no-op on a nil receiver.
func (s *Scratch) Begin() {
	if s == nil {
		return
	}
	s.nRng, s.nChan, s.nSens, s.nDrv, s.nStop, s.nFilt = 0, 0, 0, 0, 0, 0
}

// RNG returns a rand.Rand seeded with seed — a pooled instance reseeded in
// place when available, a fresh one otherwise.  Both produce the identical
// stream.
func (s *Scratch) RNG(seed int64) *rand.Rand {
	if s == nil {
		return rand.New(rand.NewSource(seed))
	}
	if s.nRng < len(s.rngs) {
		r := s.rngs[s.nRng]
		s.nRng++
		r.Seed(seed)
		return r
	}
	r := rand.New(rand.NewSource(seed))
	s.rngs = append(s.rngs, r)
	s.nRng++
	return r
}

// XRands returns n paired xrand sources and the rand.Rands wrapping them,
// growing the pool as needed.  Callers reseed the sources (typically one
// xrand.SeedMany over all of them) before drawing from the wrappers; a
// reseeded xrand.Source reproduces the exact stream of a freshly seeded
// math/rand source, so the pooled and allocate-fresh paths stay
// bit-identical.  Nil receivers allocate fresh pairs.
func (s *Scratch) XRands(n int) ([]*xrand.Source, []*rand.Rand) {
	if s == nil {
		srcs := make([]*xrand.Source, n)
		rngs := make([]*rand.Rand, n)
		for i := range srcs {
			srcs[i] = &xrand.Source{}
			rngs[i] = rand.New(srcs[i])
		}
		return srcs, rngs
	}
	for len(s.xsrcs) < n {
		src := &xrand.Source{}
		s.xsrcs = append(s.xsrcs, src)
		s.xrands = append(s.xrands, rand.New(src))
	}
	return s.xsrcs[:n], s.xrands[:n]
}

// Channel returns a channel configured like comms.NewChannel(cfg, rng),
// reusing a pooled instance when available.
func (s *Scratch) Channel(cfg comms.Config, rng *rand.Rand) (*comms.Channel, error) {
	if s == nil {
		return comms.NewChannel(cfg, rng)
	}
	if s.nChan < len(s.channels) {
		c := s.channels[s.nChan]
		if err := c.Reset(cfg, rng); err != nil {
			return nil, err
		}
		s.nChan++
		return c, nil
	}
	c, err := comms.NewChannel(cfg, rng)
	if err != nil {
		return nil, err
	}
	s.channels = append(s.channels, c)
	s.nChan++
	return c, nil
}

// Sensor returns a sensor model configured like sensor.New(cfg, rng).
func (s *Scratch) Sensor(cfg sensor.Config, rng *rand.Rand) (*sensor.Model, error) {
	if s == nil {
		return sensor.New(cfg, rng)
	}
	if s.nSens < len(s.sensors) {
		m := s.sensors[s.nSens]
		if err := m.Reset(cfg, rng); err != nil {
			return nil, err
		}
		s.nSens++
		return m, nil
	}
	m, err := sensor.New(cfg, rng)
	if err != nil {
		return nil, err
	}
	s.sensors = append(s.sensors, m)
	s.nSens++
	return m, nil
}

// Driver returns a random driver configured like traffic.NewDriver(cfg, rng).
func (s *Scratch) Driver(cfg traffic.DriverConfig, rng *rand.Rand) (*traffic.Driver, error) {
	if s == nil {
		return traffic.NewDriver(cfg, rng)
	}
	if s.nDrv < len(s.drivers) {
		d := s.drivers[s.nDrv]
		if err := d.Reset(cfg, rng); err != nil {
			return nil, err
		}
		s.nDrv++
		return d, nil
	}
	d, err := traffic.NewDriver(cfg, rng)
	if err != nil {
		return nil, err
	}
	s.drivers = append(s.drivers, d)
	s.nDrv++
	return d, nil
}

// StopAndGo returns a stop-and-go lead driver configured like
// traffic.NewStopAndGo(cfg, rng).
func (s *Scratch) StopAndGo(cfg traffic.StopAndGoConfig, rng *rand.Rand) (*traffic.StopAndGo, error) {
	if s == nil {
		return traffic.NewStopAndGo(cfg, rng)
	}
	if s.nStop < len(s.stopgos) {
		d := s.stopgos[s.nStop]
		if err := d.Reset(cfg, rng); err != nil {
			return nil, err
		}
		s.nStop++
		return d, nil
	}
	d, err := traffic.NewStopAndGo(cfg, rng)
	if err != nil {
		return nil, err
	}
	s.stopgos = append(s.stopgos, d)
	s.nStop++
	return d, nil
}

// Fusion returns a fusion filter configured like fusion.New(cfg), reusing a
// pooled instance (and its Kalman history buffer) when available.
func (s *Scratch) Fusion(cfg fusion.Config) (*fusion.Filter, error) {
	if s == nil {
		return fusion.New(cfg)
	}
	if s.nFilt < len(s.filters) {
		f := s.filters[s.nFilt]
		if err := f.ResetConfig(cfg); err != nil {
			return nil, err
		}
		s.nFilt++
		return f, nil
	}
	f, err := fusion.New(cfg)
	if err != nil {
		return nil, err
	}
	s.filters = append(s.filters, f)
	s.nFilt++
	return f, nil
}

// msgBufCap sizes the reusable Poll buffer; a burst delivering more
// messages in one control step than this simply grows a transient slice.
const msgBufCap = 64

// MsgBuf returns the reusable message scratch buffer, emptied, for use with
// comms.Channel.PollAppend.  Nil receivers return nil (append allocates as
// before).
func (s *Scratch) MsgBuf() []comms.Message {
	if s == nil {
		return nil
	}
	if s.msgBuf == nil {
		s.msgBuf = make([]comms.Message, 0, msgBufCap)
	}
	return s.msgBuf[:0]
}

// stepper returns the arena's pooled single-vehicle Stepper (allocated on
// first use), or a fresh one on a nil receiver.  The caller resets it; the
// previous episode's engine is invalidated, matching the one-episode-at-a-
// time arena contract.
func (s *Scratch) stepper() *Stepper {
	if s == nil {
		return &Stepper{}
	}
	if s.pooledStepper == nil {
		s.pooledStepper = &Stepper{}
	}
	return s.pooledStepper
}

// multiStepper is the multi-vehicle twin of stepper.
func (s *Scratch) multiStepper() *MultiStepper {
	if s == nil {
		return &MultiStepper{}
	}
	if s.pooledMultiStepper == nil {
		s.pooledMultiStepper = &MultiStepper{}
	}
	return s.pooledMultiStepper
}

// ExtEngine returns the opaque pooled-engine slot for sibling scenario
// packages (nil on a nil receiver or before the first SetExtEngine).
func (s *Scratch) ExtEngine() any {
	if s == nil {
		return nil
	}
	return s.extEngine
}

// SetExtEngine stores a sibling scenario package's pooled engine; a no-op
// on a nil receiver.
func (s *Scratch) SetExtEngine(v any) {
	if s != nil {
		s.extEngine = v
	}
}

// trackSlice returns a zeroed slice of n oncoming tracks for RunMulti.
func (s *Scratch) trackSlice(n int) []oncomingTrack {
	if s == nil {
		return make([]oncomingTrack, n)
	}
	if cap(s.tracks) < n {
		s.tracks = make([]oncomingTrack, n)
	}
	s.tracks = s.tracks[:n]
	for i := range s.tracks {
		s.tracks[i] = oncomingTrack{}
	}
	return s.tracks
}

// windowSlices returns two zeroed per-track window slices for the
// multi-vehicle telemetry probe.  Acquired once per episode (only when a
// collector is attached), so even the nil-receiver path allocates per
// episode rather than per step.
func (s *Scratch) windowSlices(n int) (cons, aggr []interval.Interval) {
	if s == nil {
		return make([]interval.Interval, n), make([]interval.Interval, n)
	}
	if cap(s.cons) < n {
		s.cons = make([]interval.Interval, n)
		s.aggr = make([]interval.Interval, n)
	}
	s.cons, s.aggr = s.cons[:n], s.aggr[:n]
	for i := range s.cons {
		s.cons[i] = interval.Interval{}
		s.aggr[i] = interval.Interval{}
	}
	return s.cons, s.aggr
}

// knowledgeSlices returns zeroed per-track knowledge and estimate slices
// for RunMulti.
func (s *Scratch) knowledgeSlices(n int) ([]core.Knowledge, []fusion.Estimate) {
	if s == nil {
		return make([]core.Knowledge, n), make([]fusion.Estimate, n)
	}
	if cap(s.knows) < n {
		s.knows = make([]core.Knowledge, n)
		s.ests = make([]fusion.Estimate, n)
	}
	s.knows, s.ests = s.knows[:n], s.ests[:n]
	for i := range s.knows {
		s.knows[i] = core.Knowledge{}
		s.ests[i] = fusion.Estimate{}
	}
	return s.knows, s.ests
}
