package sim

import (
	"fmt"
	"reflect"
	"testing"

	"safeplan/internal/core"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/planner"
	"safeplan/internal/telemetry"
)

// faultInvariants is the fail-mode checker set: everything the paper's
// guarantee promises under planner faults.  MonitorConsistency is
// deliberately absent — a guard-forced κ_e step diverges from the
// monitor's verdict by design, which is exactly the containment the other
// checkers assert.
func faultInvariants(cfg Config) []Invariant {
	return []Invariant{
		NoCollision{},
		SoundEstimate{},
		EmergencyOneStep{Cfg: cfg.Scenario},
		NewGuardConsistency(cfg.Scenario),
	}
}

func ultimateAgent(cfg Config) core.Agent {
	return core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
}

// TestGuardParityNoFault pins the pass-through contract: enabling the
// guard without a fault model must not change a single byte of the
// episode — same trace, same outcome — and must leave every guard counter
// at zero.
func TestGuardParityNoFault(t *testing.T) {
	for _, ep := range goldenEpisodes() {
		ep := ep
		t.Run(ep.Name, func(t *testing.T) {
			run := func(cfg Config) Result {
				res, err := Run(cfg, ultimateAgent(cfg), Options{Seed: goldenSeed, Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := run(ep.Cfg)

			guarded := ep.Cfg
			gc := guard.DefaultConfig(ep.Cfg.Scenario.Ego)
			guarded.Guard = &gc
			g := run(guarded)

			if g.Guard.Faults != 0 || g.Guard.FallbackLastGood != 0 || g.Guard.FallbackEmergency != 0 ||
				g.Guard.BypassSteps != 0 || g.Guard.WorstState != guard.Nominal {
				t.Fatalf("healthy planner tripped the guard: %+v", g.Guard)
			}
			if g.Guard.PlannerCalls != g.Steps {
				t.Fatalf("guard saw %d calls for %d steps", g.Guard.PlannerCalls, g.Steps)
			}
			if len(plain.Trace) != len(g.Trace) {
				t.Fatalf("trace lengths differ: %d vs %d", len(plain.Trace), len(g.Trace))
			}
			for i := range plain.Trace {
				// Formatted compare: Sample holds NaN placeholders and
				// NaN != NaN under ==.
				if fmt.Sprintf("%+v", plain.Trace[i]) != fmt.Sprintf("%+v", g.Trace[i]) {
					t.Fatalf("step %d differs with guard enabled:\n%+v\n%+v",
						i, plain.Trace[i], g.Trace[i])
				}
			}
		})
	}
}

// TestFaultPresetsContained is the fail-mode acceptance sweep: under every
// fault-injection preset the episode must never panic, never collide,
// never burn κ_e's one-step slack, and every guard intervention must obey
// the containment contract (GuardConsistency).
func TestFaultPresetsContained(t *testing.T) {
	const episodes = 40
	for _, name := range faultinject.PresetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := faultinject.Preset(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.InfoFilter = true
			cfg.PlannerFault = m
			for seed := int64(0); seed < episodes; seed++ {
				res, err := Run(cfg, ultimateAgent(cfg), Options{
					Seed:       seed,
					Invariants: faultInvariants(cfg),
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Eta < 0 {
					t.Fatalf("seed %d: collided under preset %s", seed, name)
				}
			}
		})
	}
}

// TestHighRateFaultsContained stresses the acceptance criterion's named
// worst cases — PanicP and NaNOutput at p = 0.5 — where half of all
// planner calls fail.
func TestHighRateFaultsContained(t *testing.T) {
	models := []faultinject.Model{
		faultinject.PanicP{P: 0.5},
		faultinject.NaNOutput{P: 0.5},
	}
	for _, m := range models {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.InfoFilter = true
			cfg.PlannerFault = m
			sawFault := false
			for seed := int64(0); seed < 60; seed++ {
				res, err := Run(cfg, ultimateAgent(cfg), Options{
					Seed:       seed,
					Invariants: faultInvariants(cfg),
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Guard.Faults > 0 {
					sawFault = true
				}
				if res.Guard.PlannerCalls == 0 {
					t.Fatalf("seed %d: guard never invoked", seed)
				}
			}
			if !sawFault {
				t.Fatal("p=0.5 injection never fired — wiring broken")
			}
		})
	}
}

// TestGuardAutoInstalledWithFaultModel: a fault model without an explicit
// guard must install the default guard — injected panics never escape.
func TestGuardAutoInstalledWithFaultModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PlannerFault = faultinject.PanicEvery{N: 5}
	res, err := Run(cfg, ultimateAgent(cfg), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guard.Panics == 0 {
		t.Fatalf("expected contained panics, stats %+v", res.Guard)
	}
}

// TestGuardStatsDeterministic: the guard and injector draw from seed-derived
// streams, so a repeated run reproduces the exact episode including every
// guard counter.
func TestGuardStatsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InfoFilter = true
	m, err := faultinject.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.PlannerFault = m
	run := func() Result {
		res, err := Run(cfg, ultimateAgent(cfg), Options{Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-injected episode not reproducible:\n%+v\n%+v", a.Guard, b.Guard)
	}
}

// TestGuardTelemetryEvents checks the collector wiring: fault presets emit
// guard events; a guarded no-fault run emits none.
func TestGuardTelemetryEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PlannerFault = faultinject.NaNOutput{P: 0.5}
	mtr := telemetry.NewMetrics()
	if _, err := Run(cfg, ultimateAgent(cfg), Options{Seed: 5, Collector: mtr}); err != nil {
		t.Fatal(err)
	}
	s := mtr.Snapshot()
	if s.GuardEvents == 0 || s.GuardFaults["non-finite"] == 0 {
		t.Fatalf("no guard events recorded: %+v", s.GuardFaults)
	}

	clean := DefaultConfig()
	gc := guard.DefaultConfig(clean.Scenario.Ego)
	clean.Guard = &gc
	mtr2 := telemetry.NewMetrics()
	if _, err := Run(clean, ultimateAgent(clean), Options{Seed: 5, Collector: mtr2}); err != nil {
		t.Fatal(err)
	}
	if s2 := mtr2.Snapshot(); s2.GuardEvents != 0 {
		t.Fatalf("guarded no-fault run emitted %d guard events", s2.GuardEvents)
	}
}

// TestRunMultiGuarded exercises the multi-vehicle runner's wiring.
func TestRunMultiGuarded(t *testing.T) {
	cfg := DefaultMultiConfig()
	cfg.InfoFilter = true
	cfg.PlannerFault = faultinject.NaNOutput{P: 0.3}
	agent := core.NewMultiUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
	res, err := RunMulti(cfg, agent, Options{Seed: 9, Invariants: []Invariant{
		NoCollision{},
		SoundEstimate{},
		EmergencyOneStep{Cfg: cfg.Scenario},
		NewGuardConsistency(cfg.Scenario),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guard.PlannerCalls == 0 {
		t.Fatal("guard never invoked in RunMulti")
	}
}

// TestGuardedCampaignMatchesUnguarded pins the guard's transparency at
// campaign scale: with a guard enabled and no fault model, every
// per-episode outcome must be identical to the unguarded campaign once
// the guard's own call counters are set aside.
func TestGuardedCampaignMatchesUnguarded(t *testing.T) {
	const episodes = 16
	cfg := DefaultConfig()
	cfg.InfoFilter = true
	agent := ultimateAgent(cfg)
	plain, err := RunCampaign(cfg, agent, episodes, CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}

	gc := guard.DefaultConfig(cfg.Scenario.Ego)
	cfg.Guard = &gc
	a, err := RunCampaign(cfg, agent, episodes, CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		g := a[i]
		if g.Guard.Faults != 0 || g.Guard.WorstState != guard.Nominal {
			t.Fatalf("episode %d: healthy planner tripped the guard: %+v", i, g.Guard)
		}
		g.Guard = guard.EpisodeStats{}
		if !reflect.DeepEqual(g, plain[i]) {
			t.Fatalf("episode %d differs with guard enabled:\n%+v\n%+v", i, plain[i], a[i])
		}
	}
}

// TestFaultInjectedCampaignDeterministic pins campaign determinism under
// active fault injection, guard statistics included.
func TestFaultInjectedCampaignDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InfoFilter = true
	m, err := faultinject.Preset("worst")
	if err != nil {
		t.Fatal(err)
	}
	cfg.PlannerFault = m
	agent := ultimateAgent(cfg)
	a, err := RunCampaign(cfg, agent, 16, CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg, agent, 16, CampaignOptions{BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fault-injected campaign not deterministic")
	}
}

// decodeFaultModel maps fuzz bytes onto an always-valid fault model.
func decodeFaultModel(r *fuzzReader) faultinject.Model {
	switch r.next() % 9 {
	case 0:
		return nil
	case 1:
		return faultinject.PanicEvery{N: 1 + int(r.next())%50}
	case 2:
		return faultinject.PanicP{P: r.unit()}
	case 3:
		return faultinject.NaNOutput{P: r.unit()}
	case 4:
		return faultinject.StuckOutput{P: r.unit(), Hold: 1 + int(r.next())%30}
	case 5:
		return faultinject.BiasOutput{Bias: r.rng(-12, 12), P: r.unit()}
	case 6:
		lo := r.rng(0, 0.3)
		return faultinject.LatencySpike{P: r.unit(), Min: lo, Max: lo + r.unit()}
	case 7:
		return faultinject.Flaky{
			Inner:    faultinject.NaNOutput{P: r.rng(0.2, 1)},
			PGoodBad: r.unit(),
			PBadGood: r.rng(0.02, 1),
			StartBad: r.next()%2 == 0,
		}
	default:
		return faultinject.Stack{Models: []faultinject.Model{
			faultinject.PanicP{P: r.rng(0, 0.3)},
			faultinject.NaNOutput{P: r.rng(0, 0.5)},
			faultinject.StuckOutput{P: r.rng(0, 0.1), Hold: 1 + int(r.next())%20},
			faultinject.BiasOutput{Bias: r.rng(-8, 8), P: r.unit()},
			faultinject.LatencySpike{P: r.unit(), Min: 0.05, Max: 0.5},
		}}
	}
}

// FuzzGuardedPlanner decodes arbitrary bytes into a planner fault model
// (optionally composed with a channel disturbance) and asserts the
// fail-mode guarantees via the shared invariant checkers: no escaped
// panic, no collision, κ_e's one-step slack preserved, and every guard
// intervention well-formed — no matter how the planner's compute fails.
func FuzzGuardedPlanner(f *testing.F) {
	f.Add([]byte{}, int64(1))                                // no fault, default guard
	f.Add([]byte{1, 4}, int64(7))                            // panic every 5th call
	f.Add([]byte{2, 127}, int64(42))                         // panic p≈0.5 (acceptance case)
	f.Add([]byte{3, 127}, int64(42))                         // NaN p≈0.5 (acceptance case)
	f.Add([]byte{4, 50, 10}, int64(3))                       // stuck bursts
	f.Add([]byte{5, 255, 200}, int64(9))                     // strong positive bias
	f.Add([]byte{6, 60, 120}, int64(11))                     // latency spikes
	f.Add([]byte{7, 200, 30, 30, 1}, int64(13))              // flaky NaN bursts
	f.Add([]byte{8, 30, 90, 10, 5, 128, 128, 80}, int64(99)) // worst-case stack

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		r := &fuzzReader{data: data}
		cfg := DefaultConfig()
		cfg.InfoFilter = true
		cfg.PlannerFault = decodeFaultModel(r)
		if r.next()%2 == 0 {
			cfg.SensorDisturb = decodeSensorModel(r)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("decoder produced invalid config: %v", err)
		}
		if _, err := Run(cfg, ultimateAgent(cfg), Options{
			Seed:       seed,
			Invariants: faultInvariants(cfg),
		}); err != nil {
			t.Fatalf("invariant violated under %v: %v", cfg.PlannerFault, err)
		}
	})
}
