package reach

import (
	"fmt"

	"safeplan/internal/dynamics"
)

// Slice kernels: the reachability operations applied over parallel lanes,
// for the batched lockstep stepping engine (internal/sim/batch).  Every
// lane shares one time argument and one physical envelope — the batch
// engine steps N episodes of a single Config in lockstep — while snapshots
// and sets stay per-lane.  Each kernel is the scalar operation lane by
// lane; the batch property tests pin that equality exactly, so soundness
// (the true state stays inside) transfers from the scalar proofs unchanged.
//
// Kernels panic on lane-count mismatch: the batch engine's compaction keeps
// its parallel slices in lockstep, and a length skew is a bookkeeping bug.

// checkLanes panics unless every length equals n.
func checkLanes(n int, lens ...int) {
	for _, l := range lens {
		if l != n {
			panic(fmt.Sprintf("reach: lane count mismatch: %d vs %d", n, l))
		}
	}
}

// AtSlices stores At(snaps[i], t, l) into dst[i] for every lane.
func AtSlices(dst []Set, snaps []Snapshot, t float64, l dynamics.Limits) {
	checkLanes(len(dst), len(snaps))
	for i := range dst {
		dst[i] = At(snaps[i], t, l)
	}
}

// FromSetSlices stores FromSet(src[i], dt, l) into dst[i] for every lane.
// dst may alias src.
func FromSetSlices(dst, src []Set, dt float64, l dynamics.Limits) {
	checkLanes(len(dst), len(src))
	for i := range dst {
		dst[i] = FromSet(src[i], dt, l)
	}
}

// ContainsSlices stores sets[i].Contains(states[i]) into dst[i] for every
// lane — the batched form of the per-step soundness audit the stepping
// engines run against the true oncoming state.
func ContainsSlices(dst []bool, sets []Set, states []dynamics.State) {
	checkLanes(len(dst), len(sets), len(states))
	for i := range dst {
		dst[i] = sets[i].Contains(states[i])
	}
}
