package reach

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

var lim = dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}

func TestAtZeroDelay(t *testing.T) {
	snap := Snapshot{T: 2, S: dynamics.State{P: 10, V: 5}}
	got := At(snap, 2, lim)
	if !got.P.IsPoint() || got.P.Lo != 10 || !got.V.IsPoint() || got.V.Lo != 5 {
		t.Fatalf("zero-delay reach = %+v", got)
	}
}

func TestAtNegativeDelay(t *testing.T) {
	snap := Snapshot{T: 2, S: dynamics.State{P: 10, V: 5}}
	got := At(snap, 1, lim)
	if !got.Contains(snap.S) {
		t.Fatalf("negative-delay reach should pin the snapshot, got %+v", got)
	}
}

func TestAtGrowsWithDelay(t *testing.T) {
	// The reach set at a later time is not a superset of the earlier one
	// (the vehicle keeps moving, so the lower position bound advances too),
	// but its *uncertainty* — the interval width — must be non-decreasing,
	// and both bounds must advance monotonically for a forward-only vehicle.
	snap := Snapshot{S: dynamics.State{P: 0, V: 8}}
	prev := At(snap, 0.1, lim)
	for _, dt := range []float64{0.2, 0.5, 1, 2, 5} {
		cur := At(snap, dt, lim)
		if cur.P.Width() < prev.P.Width()-1e-12 || cur.V.Width() < prev.V.Width()-1e-12 {
			t.Fatalf("uncertainty shrank at dt=%v: %+v vs %+v", dt, cur, prev)
		}
		if cur.P.Lo < prev.P.Lo-1e-12 || cur.P.Hi < prev.P.Hi-1e-12 {
			t.Fatalf("position bounds regressed at dt=%v", dt)
		}
		prev = cur
	}
}

func TestAtMatchesPaperEq2(t *testing.T) {
	// Non-saturating branch: p + v·dt + ½·a_max·dt².
	snap := Snapshot{S: dynamics.State{P: 0, V: 5}}
	dt := 1.0
	got := At(snap, dt, lim)
	wantHi := 5*dt + 0.5*lim.AMax*dt*dt
	if math.Abs(got.P.Hi-wantHi) > 1e-12 {
		t.Fatalf("P.Hi = %v, want %v (Eq. 2, first branch)", got.P.Hi, wantHi)
	}
	// Saturating branch: v reaches vMax before dt elapses.
	snap = Snapshot{S: dynamics.State{P: 0, V: 14}}
	dt = 2.0
	got = At(snap, dt, lim)
	// Paper form: p + vmax·dt − (vmax − v)²/(2·a_max).
	wantHi = lim.VMax*dt - (lim.VMax-14)*(lim.VMax-14)/(2*lim.AMax)
	if math.Abs(got.P.Hi-wantHi) > 1e-9 {
		t.Fatalf("saturating P.Hi = %v, want %v (Eq. 2, second branch)", got.P.Hi, wantHi)
	}
}

func TestVelocityBoundsClamped(t *testing.T) {
	snap := Snapshot{S: dynamics.State{P: 0, V: 8}}
	got := At(snap, 10, lim)
	if got.V.Lo != lim.VMin || got.V.Hi != lim.VMax {
		t.Fatalf("long-horizon velocity bounds = %v", got.V)
	}
}

func TestSetContains(t *testing.T) {
	s := Set{P: interval.New(0, 10), V: interval.New(2, 4)}
	if !s.Contains(dynamics.State{P: 5, V: 3}) {
		t.Error("state inside reported outside")
	}
	if s.Contains(dynamics.State{P: 11, V: 3}) {
		t.Error("position outside reported inside")
	}
	if s.Contains(dynamics.State{P: 5, V: 5}) {
		t.Error("velocity outside reported inside")
	}
}

func TestSetExpandIntersect(t *testing.T) {
	s := Set{P: interval.New(0, 10), V: interval.New(2, 4)}
	e := s.Expand(1, 0.5)
	if e.P.Lo != -1 || e.P.Hi != 11 || e.V.Lo != 1.5 || e.V.Hi != 4.5 {
		t.Fatalf("Expand = %+v", e)
	}
	x := s.Intersect(Set{P: interval.New(5, 20), V: interval.New(0, 3)})
	if x.P.Lo != 5 || x.P.Hi != 10 || x.V.Lo != 2 || x.V.Hi != 3 {
		t.Fatalf("Intersect = %+v", x)
	}
	if !s.Intersect(Set{P: interval.New(20, 30), V: s.V}).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
}

func TestEntire(t *testing.T) {
	e := Entire(lim)
	if !e.Contains(dynamics.State{P: 1e9, V: 7}) {
		t.Fatal("Entire should contain any in-envelope state")
	}
	if e.Contains(dynamics.State{P: 0, V: 20}) {
		t.Fatal("Entire must still bound velocity")
	}
}

// Soundness: simulate the vehicle under arbitrary admissible accelerations
// and verify its true state always lies inside the reachable set computed
// from the stale snapshot.  This is safety invariant #1 in DESIGN.md.
func TestQuickSoundness(t *testing.T) {
	const dt = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := dynamics.State{P: rng.Float64()*80 - 40, V: rng.Float64() * lim.VMax}
		snap := Snapshot{T: 0, S: s}
		for i := 1; i <= 100; i++ {
			a := lim.AMin + rng.Float64()*(lim.AMax-lim.AMin)
			s, _ = dynamics.Step(s, a, dt, lim)
			set := At(snap, float64(i)*dt, lim)
			// Tiny slack for float accumulation over 100 steps.
			if !set.Expand(1e-7, 1e-7).Contains(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Soundness of FromSet: propagating an interval set must contain every
// trajectory starting inside it.
func TestQuickFromSetSoundness(t *testing.T) {
	const dt = 0.05
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := Set{
			P: interval.New(-5, 5),
			V: interval.New(2, 6),
		}
		s := dynamics.State{
			P: base.P.Lo + rng.Float64()*base.P.Width(),
			V: base.V.Lo + rng.Float64()*base.V.Width(),
		}
		cur := base
		for i := 0; i < 60; i++ {
			a := lim.AMin + rng.Float64()*(lim.AMax-lim.AMin)
			s, _ = dynamics.Step(s, a, dt, lim)
			cur = FromSet(cur, dt, lim)
			if !cur.Expand(1e-7, 1e-7).Contains(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFromSetEmptyAndZeroDt(t *testing.T) {
	s := Set{P: interval.New(0, 1), V: interval.New(0, 1)}
	if got := FromSet(s, 0, lim); got != s {
		t.Fatal("zero-dt propagation should be identity")
	}
	e := Set{P: interval.Empty(), V: interval.New(0, 1)}
	if got := FromSet(e, 1, lim); !got.IsEmpty() {
		t.Fatal("empty set should stay empty")
	}
}
