package reach

import (
	"math/rand"
	"testing"

	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Property tests for the reach slice kernels, mirroring the interval-law
// style: ~200 random batches per law, each asserting (a) the batched op
// equals N scalar ops exactly and (b) the soundness property the scalar op
// guarantees — the true trajectory stays inside the propagated set — holds
// per lane on the batched output.

const propCases = 200

func drawLimits(rng *rand.Rand) dynamics.Limits {
	return dynamics.Limits{
		VMin: 0, VMax: 5 + rng.Float64()*25,
		AMin: -2 - rng.Float64()*6, AMax: 1 + rng.Float64()*4,
	}
}

func drawSnapshots(rng *rand.Rand, n int, l dynamics.Limits) []Snapshot {
	out := make([]Snapshot, n)
	for i := range out {
		out[i] = Snapshot{
			T: rng.Float64() * 2,
			S: dynamics.State{
				P: (rng.Float64() - 0.5) * 200,
				V: l.VMin + rng.Float64()*(l.VMax-l.VMin),
			},
		}
	}
	return out
}

func drawSets(rng *rand.Rand, n int, l dynamics.Limits) []Set {
	out := make([]Set, n)
	for i := range out {
		p := (rng.Float64() - 0.5) * 200
		v := l.VMin + rng.Float64()*(l.VMax-l.VMin)*0.8
		out[i] = Set{
			P: interval.New(p, p+rng.Float64()*10),
			V: interval.New(v, v+rng.Float64()*(l.VMax-v)),
		}
	}
	return out
}

func TestPropAtSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for i := 0; i < propCases; i++ {
		n := 1 + rng.Intn(64)
		l := drawLimits(rng)
		snaps := drawSnapshots(rng, n, l)
		tq := rng.Float64() * 4
		dst := make([]Set, n)
		AtSlices(dst, snaps, tq, l)
		for k := 0; k < n; k++ {
			want := At(snaps[k], tq, l)
			if dst[k] != want {
				t.Fatalf("lane %d: AtSlices %+v ≠ scalar %+v", k, dst[k], want)
			}
			// Soundness anchor: the snapshot state held still is reachable
			// whenever velocity can stay (VMin ≤ 0 forces v ≥ VMin ≥ ...);
			// at minimum the set must be non-empty with V inside the limits.
			if dst[k].IsEmpty() {
				t.Fatalf("lane %d: reachable set empty for %+v at t=%v", k, snaps[k], tq)
			}
			if dst[k].V.Lo < l.VMin-1e-12 || dst[k].V.Hi > l.VMax+1e-12 {
				t.Fatalf("lane %d: velocity bound %v escapes limits %+v", k, dst[k].V, l)
			}
		}
	}
}

// TestPropAtSlicesSoundPerLane simulates a random admissible trajectory per
// lane from the snapshot and asserts the batched reachable set contains the
// true state — the defining soundness property of Eq. 2, preserved lane by
// lane.
func TestPropAtSlicesSoundPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for i := 0; i < propCases; i++ {
		n := 1 + rng.Intn(16)
		l := drawLimits(rng)
		snaps := drawSnapshots(rng, n, l)
		const dt = 0.05
		steps := 1 + rng.Intn(40)
		states := make([]dynamics.State, n)
		dst := make([]Set, n)
		inside := make([]bool, n)
		for k := range states {
			states[k] = snaps[k].S
		}
		var tq float64
		for s := 0; s < steps; s++ {
			for k := range states {
				a := l.AMin + rng.Float64()*(l.AMax-l.AMin)
				states[k], _ = dynamics.Step(states[k], a, dt, l)
			}
			tq = float64(s+1) * dt
			for k := range dst {
				AtSlices(dst[k:k+1], snaps[k:k+1], snaps[k].T+tq, l)
			}
			ContainsSlices(inside, dst, states)
			for k, ok := range inside {
				if !ok {
					t.Fatalf("lane %d: true state %+v escaped reachable set %+v after %v s", k, states[k], dst[k], tq)
				}
			}
		}
	}
}

func TestPropFromSetSlicesMatchesScalarAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for i := 0; i < propCases; i++ {
		n := 1 + rng.Intn(64)
		l := drawLimits(rng)
		src := drawSets(rng, n, l)
		dt := rng.Float64() * 2
		dst := make([]Set, n)
		FromSetSlices(dst, src, dt, l)
		for k := 0; k < n; k++ {
			want := FromSet(src[k], dt, l)
			if dst[k] != want {
				t.Fatalf("lane %d: FromSetSlices %+v ≠ scalar %+v", k, dst[k], want)
			}
			// Inclusion monotonicity: a held state (zero accel is admissible
			// when AMin ≤ 0 ≤ AMax by construction of drawLimits) keeps any
			// velocity of the source set reachable.
			if dt > 0 && !dst[k].V.ContainsInterval(src[k].V.ClampTo(l.VMin, l.VMax)) {
				t.Fatalf("lane %d: propagated velocity %v lost source %v", k, dst[k].V, src[k].V)
			}
		}
	}
}

func TestPropContainsSlicesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < propCases; i++ {
		n := 1 + rng.Intn(64)
		l := drawLimits(rng)
		sets := drawSets(rng, n, l)
		states := make([]dynamics.State, n)
		for k := range states {
			if rng.Intn(2) == 0 {
				states[k] = dynamics.State{P: sets[k].P.Mid(), V: sets[k].V.Mid()}
			} else {
				states[k] = dynamics.State{P: sets[k].P.Hi + 1, V: sets[k].V.Mid()}
			}
		}
		dst := make([]bool, n)
		ContainsSlices(dst, sets, states)
		for k := 0; k < n; k++ {
			if dst[k] != sets[k].Contains(states[k]) {
				t.Fatalf("lane %d: ContainsSlices ≠ scalar for %+v in %+v", k, states[k], sets[k])
			}
		}
	}
}

func TestReachSliceKernelsPanicOnLaneMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ContainsSlices accepted mismatched lane counts")
		}
	}()
	ContainsSlices(make([]bool, 2), make([]Set, 3), make([]dynamics.State, 2))
}
