// Package reach implements the reachability analysis of paper Eq. 2: given
// the latest (possibly delayed) V2V message recording another vehicle's
// state at time t_k, it bounds where that vehicle can be now.
//
// The bounds assume only the vehicle's physical envelope (velocity in
// [VMin, VMax], acceleration in [AMin, AMax]) and are therefore *sound*:
// the true state is guaranteed to lie inside the returned intervals.  The
// paper's Eq. 2 is the AMax branch of the position bound, including the
// velocity-saturation correction; the package generalizes it to both
// directions and to velocity bounds.
package reach

import (
	"safeplan/internal/dynamics"
	"safeplan/internal/interval"
)

// Snapshot is a known exact state of a vehicle at time T — the content of a
// V2V message (paper §II-A: message values are accurate, only late).
type Snapshot struct {
	T float64        // timestamp the state refers to [s]
	S dynamics.State // exact position and velocity at T
}

// Set is an interval over-approximation of a vehicle's state.
type Set struct {
	P interval.Interval // possible positions
	V interval.Interval // possible velocities
}

// Contains reports whether the concrete state s lies inside the set.
func (rs Set) Contains(s dynamics.State) bool {
	return rs.P.Contains(s.P) && rs.V.Contains(s.V)
}

// Expand grows both intervals by the given margins (used to account for
// measurement quantization when a snapshot itself is uncertain).
func (rs Set) Expand(dp, dv float64) Set {
	return Set{P: rs.P.Expand(dp), V: rs.V.Expand(dv)}
}

// Intersect returns the component-wise intersection.
func (rs Set) Intersect(other Set) Set {
	return Set{P: rs.P.Intersect(other.P), V: rs.V.Intersect(other.V)}
}

// IsEmpty reports whether either component is empty.
func (rs Set) IsEmpty() bool { return rs.P.IsEmpty() || rs.V.IsEmpty() }

// At computes the reachable set at time t ≥ snap.T for a vehicle with the
// given limits, starting from the exact snapshot.  For t < snap.T (clock
// skew) it returns the degenerate set at the snapshot.
//
// The position upper bound realizes paper Eq. 2: accelerate at AMax until
// VMax, then cruise; the lower bound is the mirror image with AMin and VMin.
func At(snap Snapshot, t float64, l dynamics.Limits) Set {
	dt := t - snap.T
	if dt <= 0 {
		return Set{P: interval.Point(snap.S.P), V: interval.Point(snap.S.V)}
	}
	v := snap.S.V
	vLo := v + l.AMin*dt
	if vLo < l.VMin {
		vLo = l.VMin
	}
	vHi := v + l.AMax*dt
	if vHi > l.VMax {
		vHi = l.VMax
	}
	pLo := snap.S.P + dynamics.DistanceAfter(dt, v, l.AMin, l.VMin, l.VMax)
	pHi := snap.S.P + dynamics.DistanceAfter(dt, v, l.AMax, l.VMin, l.VMax)
	return Set{
		P: interval.New(pLo, pHi),
		V: interval.New(vLo, vHi),
	}
}

// FromSet propagates an interval state set forward by dt under the limits.
// It is the set-valued counterpart of At and is used when the starting
// knowledge is itself uncertain (e.g. a sensor-derived interval).
func FromSet(s Set, dt float64, l dynamics.Limits) Set {
	if dt <= 0 || s.IsEmpty() {
		return s
	}
	vLo := s.V.Lo + l.AMin*dt
	if vLo < l.VMin {
		vLo = l.VMin
	}
	vHi := s.V.Hi + l.AMax*dt
	if vHi > l.VMax {
		vHi = l.VMax
	}
	pLo := s.P.Lo + dynamics.DistanceAfter(dt, s.V.Lo, l.AMin, l.VMin, l.VMax)
	pHi := s.P.Hi + dynamics.DistanceAfter(dt, s.V.Hi, l.AMax, l.VMin, l.VMax)
	return Set{
		P: interval.New(pLo, pHi),
		V: interval.New(vLo, vHi),
	}
}

// Entire returns the least informative set compatible with the limits:
// unbounded position, velocity inside [VMin, VMax].  It is the estimate
// before any message or sensor reading has arrived.
func Entire(l dynamics.Limits) Set {
	return Set{P: interval.Entire(), V: interval.New(l.VMin, l.VMax)}
}
