package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Default histogram bucket bounds.  Interval widths are metres (position)
// and seconds (windows); planner latency is nanoseconds.
var (
	// DefaultWidthBounds buckets estimate/window widths: sub-metre
	// precision at the tight end, coarse at the reachability-blowup end.
	DefaultWidthBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	// DefaultLatencyBounds buckets planner decision latency [ns]:
	// 1 µs … 10 ms.
	DefaultLatencyBounds = []float64{1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 1e7}
)

// knownReasons indexes the fixed monitor-decision counters; anything else
// lands in reasonOther (future-proofing for scenario-specific reasons).
var knownReasons = []string{ReasonPlanner, ReasonBoundary, ReasonUnsafe, ReasonHold, ReasonInfeasible}

const reasonOther = "other"

// Metrics is the standard Collector: atomic counters and fixed-bucket
// histograms, safe to share across every worker of a parallel campaign.
// The zero value is not usable; call NewMetrics.
type Metrics struct {
	steps     atomic.Int64
	emergency atomic.Int64

	episodes  atomic.Int64
	reached   atomic.Int64
	collided  atomic.Int64
	timeouts  atomic.Int64
	soundViol atomic.Int64
	etaSum    atomicFloat

	reasons [6]atomic.Int64 // knownReasons order, then reasonOther

	soundWidth *Histogram
	fusedWidth *Histogram
	consWidth  *Histogram
	aggrWidth  *Histogram
	latency    *Histogram

	done, total atomic.Int64
}

// NewMetrics returns an empty Metrics collector with the default bucket
// layout.
func NewMetrics() *Metrics {
	return &Metrics{
		soundWidth: NewHistogram(DefaultWidthBounds...),
		fusedWidth: NewHistogram(DefaultWidthBounds...),
		consWidth:  NewHistogram(DefaultWidthBounds...),
		aggrWidth:  NewHistogram(DefaultWidthBounds...),
		latency:    NewHistogram(DefaultLatencyBounds...),
	}
}

// OnStep implements Collector.
func (m *Metrics) OnStep(p StepProbe) {
	m.steps.Add(1)
	if p.Emergency {
		m.emergency.Add(1)
	}
	m.soundWidth.Observe(p.SoundWidth)
	m.fusedWidth.Observe(p.FusedWidth)
	m.consWidth.Observe(p.ConsWidth)
	m.aggrWidth.Observe(p.AggrWidth)
	if p.PlannerNs > 0 {
		m.latency.Observe(float64(p.PlannerNs))
	}
}

// OnMonitorDecision implements Collector.
func (m *Metrics) OnMonitorDecision(reason string) {
	for i, r := range knownReasons {
		if reason == r {
			m.reasons[i].Add(1)
			return
		}
	}
	m.reasons[len(knownReasons)].Add(1)
}

// OnEpisode implements Collector.
func (m *Metrics) OnEpisode(o EpisodeOutcome) {
	m.episodes.Add(1)
	switch {
	case o.Collided:
		m.collided.Add(1)
	case o.Reached:
		m.reached.Add(1)
	default:
		m.timeouts.Add(1)
	}
	m.soundViol.Add(int64(o.SoundnessViolations))
	m.etaSum.Add(o.Eta)
}

// OnProgress implements Collector.
func (m *Metrics) OnProgress(done, total int64) {
	m.done.Store(done)
	m.total.Store(total)
}

// Progress returns the campaign progress last reported to the collector.
// It reads two atomics and allocates nothing, so a UI goroutine can poll
// it at any rate while the campaign runs.
func (m *Metrics) Progress() (done, total int64) {
	return m.done.Load(), m.total.Load()
}

// Snapshot is a point-in-time copy of a Metrics collector, encodable as
// JSON and renderable as text.
type Snapshot struct {
	Episodes int64 `json:"episodes"`
	Reached  int64 `json:"reached"`
	Collided int64 `json:"collided"`
	Timeouts int64 `json:"timeouts"`

	MeanEta             float64 `json:"mean_eta"`
	Steps               int64   `json:"steps"`
	EmergencySteps      int64   `json:"emergency_steps"`
	EmergencyRate       float64 `json:"emergency_rate"`
	SoundnessViolations int64   `json:"soundness_violations"`

	// MonitorReasons counts runtime-monitor selections by reason ("kn"
	// when the embedded planner kept control).  Empty for pure agents,
	// which bypass the monitor entirely.
	MonitorReasons map[string]int64 `json:"monitor_reasons,omitempty"`

	SoundWidth     HistogramSnapshot `json:"sound_width_m"`
	FusedWidth     HistogramSnapshot `json:"fused_width_m"`
	ConsWidth      HistogramSnapshot `json:"cons_window_s"`
	AggrWidth      HistogramSnapshot `json:"aggr_window_s"`
	PlannerLatency HistogramSnapshot `json:"planner_latency_ns"`

	ProgressDone  int64 `json:"progress_done"`
	ProgressTotal int64 `json:"progress_total"`
}

// Snapshot copies the collector's current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Episodes:            m.episodes.Load(),
		Reached:             m.reached.Load(),
		Collided:            m.collided.Load(),
		Timeouts:            m.timeouts.Load(),
		Steps:               m.steps.Load(),
		EmergencySteps:      m.emergency.Load(),
		SoundnessViolations: m.soundViol.Load(),
		SoundWidth:          m.soundWidth.Snapshot(),
		FusedWidth:          m.fusedWidth.Snapshot(),
		ConsWidth:           m.consWidth.Snapshot(),
		AggrWidth:           m.aggrWidth.Snapshot(),
		PlannerLatency:      m.latency.Snapshot(),
		ProgressDone:        m.done.Load(),
		ProgressTotal:       m.total.Load(),
	}
	if s.Episodes > 0 {
		s.MeanEta = m.etaSum.Load() / float64(s.Episodes)
	}
	if s.Steps > 0 {
		s.EmergencyRate = float64(s.EmergencySteps) / float64(s.Steps)
	}
	for i, r := range knownReasons {
		if n := m.reasons[i].Load(); n > 0 {
			if s.MonitorReasons == nil {
				s.MonitorReasons = make(map[string]int64)
			}
			s.MonitorReasons[r] = n
		}
	}
	if n := m.reasons[len(knownReasons)].Load(); n > 0 {
		if s.MonitorReasons == nil {
			s.MonitorReasons = make(map[string]int64)
		}
		s.MonitorReasons[reasonOther] = n
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// WriteText renders a human-readable metrics dump.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "episodes:        %d (reached %d, collided %d, timeout %d)\n",
		s.Episodes, s.Reached, s.Collided, s.Timeouts)
	fmt.Fprintf(&b, "mean eta:        %.4f\n", s.MeanEta)
	fmt.Fprintf(&b, "steps:           %d, emergency %d (%.2f%%)\n",
		s.Steps, s.EmergencySteps, 100*s.EmergencyRate)
	fmt.Fprintf(&b, "soundness viol.: %d\n", s.SoundnessViolations)
	if len(s.MonitorReasons) > 0 {
		keys := make([]string, 0, len(s.MonitorReasons))
		for k := range s.MonitorReasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("monitor:        ")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, s.MonitorReasons[k])
		}
		b.WriteByte('\n')
	}
	writeHist(&b, "sound width [m]", s.SoundWidth, 1)
	writeHist(&b, "fused width [m]", s.FusedWidth, 1)
	writeHist(&b, "cons window [s]", s.ConsWidth, 1)
	writeHist(&b, "aggr window [s]", s.AggrWidth, 1)
	writeHist(&b, "planner [µs]", s.PlannerLatency, 1e-3)
	if s.ProgressTotal > 0 {
		fmt.Fprintf(&b, "progress:        %d/%d\n", s.ProgressDone, s.ProgressTotal)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the snapshot as a string (WriteText into a buffer).
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// writeHist prints one histogram line; scale converts the native unit for
// display (e.g. ns → µs).
func writeHist(b *strings.Builder, label string, h HistogramSnapshot, scale float64) {
	if h.Count == 0 {
		return
	}
	fmt.Fprintf(b, "%-16s n=%d mean=%.3g min=%.3g max=%.3g\n",
		label+":", h.Count, h.Mean*scale, h.Min*scale, h.Max*scale)
}
