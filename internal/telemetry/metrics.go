package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default histogram bucket bounds.  Interval widths are metres (position)
// and seconds (windows); planner latency is nanoseconds.
var (
	// DefaultWidthBounds buckets estimate/window widths: sub-metre
	// precision at the tight end, coarse at the reachability-blowup end.
	DefaultWidthBounds = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64}
	// DefaultLatencyBounds buckets planner decision latency [ns]:
	// 1 µs … 10 ms.
	DefaultLatencyBounds = []float64{1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 1e7}
)

// knownReasons indexes the fixed monitor-decision counters; anything else
// lands in reasonOther (future-proofing for scenario-specific reasons).
var knownReasons = []string{ReasonPlanner, ReasonBoundary, ReasonUnsafe, ReasonHold, ReasonInfeasible}

const reasonOther = "other"

// knownGuardFaults and knownGuardFallbacks index the fixed guard-event
// counters, mirroring knownReasons; unknown strings land in the trailing
// "other" slot.
var (
	knownGuardFaults    = []string{GuardFaultPanic, GuardFaultDeadline, GuardFaultWallClock, GuardFaultNonFinite, GuardFaultRange}
	knownGuardFallbacks = []string{GuardFallbackLastGood, GuardFallbackEmergency}
)

// maxGuardTransitions bounds the retained degradation-transition log; a
// pathological flaky campaign must not grow the collector without bound.
const maxGuardTransitions = 256

// GuardTransition is one retained degradation-state transition.
type GuardTransition struct {
	T    float64 `json:"t"`
	From string  `json:"from"`
	To   string  `json:"to"`
}

// Metrics is the standard Collector: atomic counters and fixed-bucket
// histograms, safe to share across every worker of a parallel campaign.
// The zero value is not usable; call NewMetrics.
type Metrics struct {
	steps     atomic.Int64
	emergency atomic.Int64

	episodes  atomic.Int64
	reached   atomic.Int64
	collided  atomic.Int64
	timeouts  atomic.Int64
	fusedMiss atomic.Int64
	soundViol atomic.Int64
	etaSum    atomicFloat

	reasons [6]atomic.Int64 // knownReasons order, then reasonOther

	guardEvents    atomic.Int64
	guardFaults    [6]atomic.Int64 // knownGuardFaults order, then other
	guardFallbacks [3]atomic.Int64 // knownGuardFallbacks order, then other

	transMu     sync.Mutex
	transitions []GuardTransition
	transTotal  int64

	soundWidth *Histogram
	fusedWidth *Histogram
	consWidth  *Histogram
	aggrWidth  *Histogram
	latency    *Histogram

	done, total atomic.Int64
}

// NewMetrics returns an empty Metrics collector with the default bucket
// layout.
func NewMetrics() *Metrics {
	return &Metrics{
		soundWidth: NewHistogram(DefaultWidthBounds...),
		fusedWidth: NewHistogram(DefaultWidthBounds...),
		consWidth:  NewHistogram(DefaultWidthBounds...),
		aggrWidth:  NewHistogram(DefaultWidthBounds...),
		latency:    NewHistogram(DefaultLatencyBounds...),
	}
}

// OnStep implements Collector.
func (m *Metrics) OnStep(p StepProbe) {
	m.steps.Add(1)
	if p.Emergency {
		m.emergency.Add(1)
	}
	m.soundWidth.Observe(p.SoundWidth)
	m.fusedWidth.Observe(p.FusedWidth)
	m.consWidth.Observe(p.ConsWidth)
	m.aggrWidth.Observe(p.AggrWidth)
	if p.PlannerNs > 0 {
		m.latency.Observe(float64(p.PlannerNs))
	}
}

// OnMonitorDecision implements Collector.
func (m *Metrics) OnMonitorDecision(reason string) {
	countByName(m.reasons[:], knownReasons, reason)
}

// OnGuardEvent implements Collector.
func (m *Metrics) OnGuardEvent(e GuardEvent) {
	m.guardEvents.Add(1)
	if e.Fault != "" {
		countByName(m.guardFaults[:], knownGuardFaults, e.Fault)
	}
	if e.Fallback != "" {
		countByName(m.guardFallbacks[:], knownGuardFallbacks, e.Fallback)
	}
	if e.Transition {
		m.transMu.Lock()
		m.transTotal++
		if len(m.transitions) < maxGuardTransitions {
			m.transitions = append(m.transitions, GuardTransition{T: e.T, From: e.From, To: e.State})
		}
		m.transMu.Unlock()
	}
}

// countByName bumps the counter matching name, or the trailing "other"
// slot.  Counters are plain wrapping int64s: a campaign long enough to
// overflow one (≈9.2·10¹⁸ events) wraps silently like every other Go
// counter, which the overflow test pins down.
func countByName(counters []atomic.Int64, names []string, name string) {
	for i, n := range names {
		if name == n {
			counters[i].Add(1)
			return
		}
	}
	counters[len(names)].Add(1)
}

// OnEpisode implements Collector.
func (m *Metrics) OnEpisode(o EpisodeOutcome) {
	m.episodes.Add(1)
	switch {
	case o.Collided:
		m.collided.Add(1)
	case o.Reached:
		m.reached.Add(1)
	default:
		m.timeouts.Add(1)
	}
	m.fusedMiss.Add(int64(o.FusedIntervalMisses))
	m.soundViol.Add(int64(o.SoundViolations))
	m.etaSum.Add(o.Eta)
}

// OnProgress implements Collector.
func (m *Metrics) OnProgress(done, total int64) {
	m.done.Store(done)
	m.total.Store(total)
}

// Progress returns the campaign progress last reported to the collector.
// It reads two atomics and allocates nothing, so a UI goroutine can poll
// it at any rate while the campaign runs.
func (m *Metrics) Progress() (done, total int64) {
	return m.done.Load(), m.total.Load()
}

// Snapshot is a point-in-time copy of a Metrics collector, encodable as
// JSON and renderable as text.
type Snapshot struct {
	Episodes int64 `json:"episodes"`
	Reached  int64 `json:"reached"`
	Collided int64 `json:"collided"`
	Timeouts int64 `json:"timeouts"`

	MeanEta        float64 `json:"mean_eta"`
	Steps          int64   `json:"steps"`
	EmergencySteps int64   `json:"emergency_steps"`
	EmergencyRate  float64 `json:"emergency_rate"`

	// FusedIntervalMisses counts fused-interval misses (expected Kalman
	// sharpening error, not a safety defect).
	FusedIntervalMisses int64 `json:"fused_interval_misses"`
	// SoundViolations counts genuine soundness-contract violations; 0 in
	// every correct configuration.
	SoundViolations int64 `json:"sound_violations"`

	// MonitorReasons counts runtime-monitor selections by reason ("kn"
	// when the embedded planner kept control).  Empty for pure agents,
	// which bypass the monitor entirely.
	MonitorReasons map[string]int64 `json:"monitor_reasons,omitempty"`

	// GuardEvents counts planner-fault guard interventions; GuardFaults
	// and GuardFallbacks break them down by kind.  All empty when no
	// guard is active.
	GuardEvents    int64            `json:"guard_events,omitempty"`
	GuardFaults    map[string]int64 `json:"guard_faults,omitempty"`
	GuardFallbacks map[string]int64 `json:"guard_fallbacks,omitempty"`
	// GuardTransitions retains the first maxGuardTransitions
	// degradation-state transitions; GuardTransitionTotal is the true
	// count (the log is bounded, the counter is not).
	GuardTransitions     []GuardTransition `json:"guard_transitions,omitempty"`
	GuardTransitionTotal int64             `json:"guard_transition_total,omitempty"`

	SoundWidth     HistogramSnapshot `json:"sound_width_m"`
	FusedWidth     HistogramSnapshot `json:"fused_width_m"`
	ConsWidth      HistogramSnapshot `json:"cons_window_s"`
	AggrWidth      HistogramSnapshot `json:"aggr_window_s"`
	PlannerLatency HistogramSnapshot `json:"planner_latency_ns"`

	ProgressDone  int64 `json:"progress_done"`
	ProgressTotal int64 `json:"progress_total"`
}

// Snapshot copies the collector's current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Episodes:            m.episodes.Load(),
		Reached:             m.reached.Load(),
		Collided:            m.collided.Load(),
		Timeouts:            m.timeouts.Load(),
		Steps:               m.steps.Load(),
		EmergencySteps:      m.emergency.Load(),
		FusedIntervalMisses: m.fusedMiss.Load(),
		SoundViolations:     m.soundViol.Load(),
		SoundWidth:          m.soundWidth.Snapshot(),
		FusedWidth:          m.fusedWidth.Snapshot(),
		ConsWidth:           m.consWidth.Snapshot(),
		AggrWidth:           m.aggrWidth.Snapshot(),
		PlannerLatency:      m.latency.Snapshot(),
		ProgressDone:        m.done.Load(),
		ProgressTotal:       m.total.Load(),
	}
	if s.Episodes > 0 {
		s.MeanEta = m.etaSum.Load() / float64(s.Episodes)
	}
	if s.Steps > 0 {
		s.EmergencyRate = float64(s.EmergencySteps) / float64(s.Steps)
	}
	for i, r := range knownReasons {
		if n := m.reasons[i].Load(); n > 0 {
			if s.MonitorReasons == nil {
				s.MonitorReasons = make(map[string]int64)
			}
			s.MonitorReasons[r] = n
		}
	}
	if n := m.reasons[len(knownReasons)].Load(); n > 0 {
		if s.MonitorReasons == nil {
			s.MonitorReasons = make(map[string]int64)
		}
		s.MonitorReasons[reasonOther] = n
	}
	s.GuardEvents = m.guardEvents.Load()
	s.GuardFaults = snapshotByName(m.guardFaults[:], knownGuardFaults)
	s.GuardFallbacks = snapshotByName(m.guardFallbacks[:], knownGuardFallbacks)
	m.transMu.Lock()
	if len(m.transitions) > 0 {
		s.GuardTransitions = append([]GuardTransition(nil), m.transitions...)
	}
	s.GuardTransitionTotal = m.transTotal
	m.transMu.Unlock()
	return s
}

// snapshotByName copies the nonzero named counters (plus the trailing
// "other" slot) into a map, or nil when all are zero.
func snapshotByName(counters []atomic.Int64, names []string) map[string]int64 {
	var out map[string]int64
	add := func(name string, n int64) {
		if n == 0 {
			return
		}
		if out == nil {
			out = make(map[string]int64)
		}
		out[name] = n
	}
	for i, name := range names {
		add(name, counters[i].Load())
	}
	add("other", counters[len(names)].Load())
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// WriteText renders a human-readable metrics dump.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "episodes:        %d (reached %d, collided %d, timeout %d)\n",
		s.Episodes, s.Reached, s.Collided, s.Timeouts)
	fmt.Fprintf(&b, "mean eta:        %.4f\n", s.MeanEta)
	fmt.Fprintf(&b, "steps:           %d, emergency %d (%.2f%%)\n",
		s.Steps, s.EmergencySteps, 100*s.EmergencyRate)
	fmt.Fprintf(&b, "fused misses:    %d\n", s.FusedIntervalMisses)
	fmt.Fprintf(&b, "sound viol.:     %d\n", s.SoundViolations)
	if len(s.MonitorReasons) > 0 {
		keys := make([]string, 0, len(s.MonitorReasons))
		for k := range s.MonitorReasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("monitor:        ")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, s.MonitorReasons[k])
		}
		b.WriteByte('\n')
	}
	if s.GuardEvents > 0 {
		fmt.Fprintf(&b, "guard events:    %d (transitions %d)\n", s.GuardEvents, s.GuardTransitionTotal)
		writeNamedCounts(&b, "guard faults", s.GuardFaults)
		writeNamedCounts(&b, "guard fallback", s.GuardFallbacks)
	}
	writeHist(&b, "sound width [m]", s.SoundWidth, 1)
	writeHist(&b, "fused width [m]", s.FusedWidth, 1)
	writeHist(&b, "cons window [s]", s.ConsWidth, 1)
	writeHist(&b, "aggr window [s]", s.AggrWidth, 1)
	writeHist(&b, "planner [µs]", s.PlannerLatency, 1e-3)
	if s.ProgressTotal > 0 {
		fmt.Fprintf(&b, "progress:        %d/%d\n", s.ProgressDone, s.ProgressTotal)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the snapshot as a string (WriteText into a buffer).
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// writeNamedCounts prints one sorted key=value counter line.
func writeNamedCounts(b *strings.Builder, label string, counts map[string]int64) {
	if len(counts) == 0 {
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%-16s", label+":")
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, counts[k])
	}
	b.WriteByte('\n')
}

// writeHist prints one histogram line; scale converts the native unit for
// display (e.g. ns → µs).
func writeHist(b *strings.Builder, label string, h HistogramSnapshot, scale float64) {
	if h.Count == 0 {
		return
	}
	fmt.Fprintf(b, "%-16s n=%d mean=%.3g min=%.3g max=%.3g\n",
		label+":", h.Count, h.Mean*scale, h.Min*scale, h.Max*scale)
}
