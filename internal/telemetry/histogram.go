package telemetry

import (
	"math"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic Add/Min/Max via CAS on the bit
// pattern.  The zero value is 0.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) Max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram is a fixed-bucket, lock-free histogram: bucket i counts
// observations v with v <= Bounds[i] (and v > Bounds[i-1]); one overflow
// bucket counts v > Bounds[len-1].  Observe is wait-free on the bucket
// counters, so one histogram can absorb probes from every campaign
// worker without contention beyond cache-line traffic.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow

	count atomic.Int64
	sum   atomicFloat
	min   atomicFloat
	max   atomicFloat
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Inf(1))
	h.max.Store(math.Inf(-1))
	return h
}

// Observe records one value.  Non-finite values are ignored (an empty
// interval has no meaningful width; a NaN latency is a bug upstream).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.min.Min(v)
	h.max.Max(v)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped for
// JSON encoding.  Buckets[i] counts observations ≤ Bounds[i]; the last
// bucket (len(Bounds)) is the overflow bucket.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Mean    float64   `json:"mean"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket that contains it.  The first bucket interpolates from
// Min, the overflow bucket toward Max, and the result is clamped into
// [Min, Max]; an empty histogram returns NaN.  The estimate is exact at
// the bucket bounds and monotone in q, which is all a latency report
// (p50/p99) needs from fixed-bucket data.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (target - cum) / float64(n)
			v := lo + frac*(hi-lo)
			return math.Min(math.Max(v, s.Min), s.Max)
		}
		cum = next
	}
	return s.Max
}

// Snapshot copies the histogram's current state.  Concurrent Observe
// calls may land between field reads; each field is individually
// consistent, which is all a monitoring dump needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Mean = h.sum.Load() / float64(s.Count)
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}
