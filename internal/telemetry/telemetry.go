// Package telemetry is the engine's observability layer: a pluggable,
// allocation-light collector interface that the simulation loops
// (internal/sim, internal/carfollow) and the compound planners
// (internal/core) feed with per-step probes, per-episode outcomes,
// monitor decisions, and campaign progress.
//
// The design follows the run-time-monitoring literature's demand that a
// safety filter's interventions be *observable*: the paper's evaluation
// hinges on how often the monitor selects κ_e over κ_n, how tight the
// fused estimate is compared to the sound one, and how much room the
// Eq. 8 aggressive window wins over the conservative one — data the
// engine computes every control step and, before this package, threw
// away.
//
// Probes are plain value structs (no allocation per call) and the engine
// pays exactly one nil-check per probe site when telemetry is off; the
// standard Metrics collector uses atomics throughout so one collector
// can be shared by every worker of a parallel campaign.
package telemetry

// Monitor selection reasons, as reported by the compound planners via
// Collector.OnMonitorDecision.  The emergency reasons mirror the string
// constants of internal/monitor's Outcome.Reason.
const (
	// ReasonPlanner means the embedded planner κ_n kept control.
	ReasonPlanner = "kn"
	// ReasonBoundary: the state entered the boundary safe set X_b (Eq. 3).
	ReasonBoundary = "boundary"
	// ReasonUnsafe: the (inflated) window test reported the unsafe set.
	ReasonUnsafe = "unsafe"
	// ReasonHold: a stopped ego near the front line is held by κ_e.
	ReasonHold = "hold"
	// ReasonInfeasible: commitment guards conflict; κ_e resolves.
	ReasonInfeasible = "infeasible-commit"
)

// StepProbe is one control step's observability payload.  It is passed by
// value, so collecting it never allocates.
type StepProbe struct {
	// T is the simulation time of the step [s].
	T float64
	// Emergency is true when κ_e produced the command this step.
	Emergency bool

	// SoundWidth is the sound position-interval width [m] — the estimate
	// the runtime monitor consumes.
	SoundWidth float64
	// FusedWidth is the fused (Kalman-joined) position-interval width [m]
	// — the estimate the embedded planner consumes.  The gap between the
	// two is the information filter's contribution.
	FusedWidth float64

	// ConsWidth and AggrWidth are the conservative and aggressive
	// passing-window widths [s]; their difference is the Eq. 8
	// aggressive-estimation gap handed to κ_n.  Zero when the scenario
	// has no passing-window notion (car following).
	ConsWidth float64
	AggrWidth float64

	// PlannerNs is the wall-clock latency of the agent's decision [ns].
	PlannerNs int64

	// CertWidth is the width of the IBP-certified planner output range
	// [m/s²] when verified mode is enabled (zero otherwise); CertMiss is
	// set on the steps where the executed command escaped that range.
	CertWidth float64
	CertMiss  bool
}

// EpisodeOutcome is the scored result of one finished episode.
type EpisodeOutcome struct {
	Seed           int64
	Reached        bool
	Collided       bool
	Eta            float64
	ReachTime      float64
	Steps          int
	EmergencySteps int

	// FusedIntervalMisses counts steps where the fused (deliberately
	// non-guaranteed) interval missed the true state — expected sharpening
	// error.  Previously (mis)named SoundnessViolations.
	FusedIntervalMisses int
	// SoundViolations counts genuine soundness-contract violations (the
	// sound interval pair missed the true state); must be 0.
	SoundViolations int
}

// Guard fault and fallback kinds, as reported by the planner-fault guard
// (internal/guard) via Collector.OnGuardEvent.  The strings mirror the
// guard's Fault/Fallback Stringers.
const (
	GuardFaultPanic     = "panic"
	GuardFaultDeadline  = "deadline"
	GuardFaultWallClock = "wall-clock"
	GuardFaultNonFinite = "non-finite"
	GuardFaultRange     = "range"

	GuardFallbackLastGood  = "last-good"
	GuardFallbackEmergency = "emergency"
)

// GuardEvent is one planner-fault guard intervention: a contained κ_n
// failure, a substituted fallback command, or a degradation-state
// transition.  Clean pass-through steps are not reported.
type GuardEvent struct {
	// T is the simulation time of the step [s].
	T float64
	// Fault is the contained failure kind (one of the GuardFault*
	// constants; empty on a clean EmergencyOnly bypass step).
	Fault string
	// Fallback names the source of the executed command (one of the
	// GuardFallback* constants; empty when κ_n's own output survived a
	// state transition step).
	Fallback string
	// State is the degradation state after the step; From is the state
	// before it (equal unless Transition).
	State, From string
	// Transition is true when the step moved the degradation state
	// machine.
	Transition bool
}

// Collector receives probes from the simulation engine.  Implementations
// MUST be safe for concurrent use: parallel campaigns share one collector
// across all workers.  Embed Nop to implement only the probes you need.
type Collector interface {
	// OnStep observes one control step of a running episode.
	OnStep(p StepProbe)
	// OnMonitorDecision observes one runtime-monitor selection: one of
	// the Reason* constants (ReasonPlanner when κ_n kept control).  It is
	// reported by the compound planners, so pure agents never call it.
	OnMonitorDecision(reason string)
	// OnGuardEvent observes one planner-fault guard intervention
	// (contained fault, fallback substitution, or degradation-state
	// transition).  Reported only when a guard is active.
	OnGuardEvent(e GuardEvent)
	// OnEpisode observes one finished episode.
	OnEpisode(o EpisodeOutcome)
	// OnProgress observes campaign progress: done of total episodes have
	// finished.  Called once per completed episode, from worker
	// goroutines, with done strictly increasing per collector.
	OnProgress(done, total int64)
}

// Nop is a Collector that ignores every probe.  Embed it to implement
// partial collectors.
type Nop struct{}

// OnStep implements Collector.
func (Nop) OnStep(StepProbe) {}

// OnMonitorDecision implements Collector.
func (Nop) OnMonitorDecision(string) {}

// OnGuardEvent implements Collector.
func (Nop) OnGuardEvent(GuardEvent) {}

// OnEpisode implements Collector.
func (Nop) OnEpisode(EpisodeOutcome) {}

// OnProgress implements Collector.
func (Nop) OnProgress(int64, int64) {}

// ProgressFunc adapts a callback to a Collector that only observes
// campaign progress (e.g. to drive a console progress line).
type ProgressFunc func(done, total int64)

// OnStep implements Collector.
func (ProgressFunc) OnStep(StepProbe) {}

// OnMonitorDecision implements Collector.
func (ProgressFunc) OnMonitorDecision(string) {}

// OnGuardEvent implements Collector.
func (ProgressFunc) OnGuardEvent(GuardEvent) {}

// OnEpisode implements Collector.
func (ProgressFunc) OnEpisode(EpisodeOutcome) {}

// OnProgress implements Collector.
func (f ProgressFunc) OnProgress(done, total int64) { f(done, total) }

// multi fans every probe out to several collectors.
type multi []Collector

// Multi bundles several collectors into one (e.g. Metrics plus a
// ProgressFunc).  Nil members are dropped; a bundle of zero or one
// collector collapses to that collector.
func Multi(cs ...Collector) Collector {
	kept := make(multi, 0, len(cs))
	for _, c := range cs {
		if c != nil {
			kept = append(kept, c)
		}
	}
	switch len(kept) {
	case 0:
		return Nop{}
	case 1:
		return kept[0]
	}
	return kept
}

// OnStep implements Collector.
func (m multi) OnStep(p StepProbe) {
	for _, c := range m {
		c.OnStep(p)
	}
}

// OnMonitorDecision implements Collector.
func (m multi) OnMonitorDecision(reason string) {
	for _, c := range m {
		c.OnMonitorDecision(reason)
	}
}

// OnGuardEvent implements Collector.
func (m multi) OnGuardEvent(e GuardEvent) {
	for _, c := range m {
		c.OnGuardEvent(e)
	}
}

// OnEpisode implements Collector.
func (m multi) OnEpisode(o EpisodeOutcome) {
	for _, c := range m {
		c.OnEpisode(o)
	}
}

// OnProgress implements Collector.
func (m multi) OnProgress(done, total int64) {
	for _, c := range m {
		c.OnProgress(done, total)
	}
}
