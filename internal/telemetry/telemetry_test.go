package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket i counts v <= bounds[i]: {0.5, 1} | {1.5, 2} | {3, 4} | {5, 100}.
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Errorf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	wantMean := (0.5 + 1 + 1.5 + 2 + 3 + 4 + 5 + 100) / 8
	if math.Abs(s.Mean-wantMean) > 1e-12 {
		t.Errorf("mean = %v, want %v", s.Mean, wantMean)
	}
}

func TestHistogramIgnoresNonFinite(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations counted: %d", h.Count())
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.OnStep(StepProbe{Emergency: true, SoundWidth: 1, FusedWidth: 0.5, ConsWidth: 2, AggrWidth: 3, PlannerNs: 1500})
	m.OnStep(StepProbe{SoundWidth: 2, FusedWidth: 1})
	m.OnMonitorDecision(ReasonPlanner)
	m.OnMonitorDecision(ReasonBoundary)
	m.OnMonitorDecision("mystery")
	m.OnEpisode(EpisodeOutcome{Reached: true, Eta: 0.2, Steps: 2, FusedIntervalMisses: 1})
	m.OnEpisode(EpisodeOutcome{Collided: true, Eta: -1})
	m.OnEpisode(EpisodeOutcome{})
	m.OnProgress(3, 10)

	s := m.Snapshot()
	if s.Episodes != 3 || s.Reached != 1 || s.Collided != 1 || s.Timeouts != 1 {
		t.Errorf("episode counters: %+v", s)
	}
	if s.Steps != 2 || s.EmergencySteps != 1 {
		t.Errorf("step counters: steps=%d emergency=%d", s.Steps, s.EmergencySteps)
	}
	if s.EmergencyRate != 0.5 {
		t.Errorf("emergency rate = %v", s.EmergencyRate)
	}
	if math.Abs(s.MeanEta-(0.2-1)/3) > 1e-12 {
		t.Errorf("mean eta = %v", s.MeanEta)
	}
	if s.FusedIntervalMisses != 1 {
		t.Errorf("fused interval misses = %d", s.FusedIntervalMisses)
	}
	if s.SoundViolations != 0 {
		t.Errorf("sound violations = %d", s.SoundViolations)
	}
	if s.MonitorReasons[ReasonPlanner] != 1 || s.MonitorReasons[ReasonBoundary] != 1 || s.MonitorReasons["other"] != 1 {
		t.Errorf("monitor reasons = %v", s.MonitorReasons)
	}
	if s.SoundWidth.Count != 2 || s.FusedWidth.Count != 2 {
		t.Errorf("width histogram counts: %d/%d", s.SoundWidth.Count, s.FusedWidth.Count)
	}
	if s.PlannerLatency.Count != 1 {
		t.Errorf("latency count = %d", s.PlannerLatency.Count)
	}
	if s.ProgressDone != 3 || s.ProgressTotal != 10 {
		t.Errorf("progress = %d/%d", s.ProgressDone, s.ProgressTotal)
	}
	if done, total := m.Progress(); done != 3 || total != 10 {
		t.Errorf("Progress() = %d/%d", done, total)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.OnStep(StepProbe{Emergency: i%2 == 0, SoundWidth: float64(i % 7), FusedWidth: 0.5, PlannerNs: int64(i + 1)})
				m.OnMonitorDecision(ReasonPlanner)
			}
			m.OnEpisode(EpisodeOutcome{Reached: true, Eta: 1, Steps: perWorker})
		}(w)
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Steps != workers*perWorker {
		t.Errorf("steps = %d, want %d", s.Steps, workers*perWorker)
	}
	if s.EmergencySteps != workers*perWorker/2 {
		t.Errorf("emergency steps = %d", s.EmergencySteps)
	}
	if s.Episodes != workers || s.Reached != workers {
		t.Errorf("episodes = %d reached = %d", s.Episodes, s.Reached)
	}
	if s.MonitorReasons[ReasonPlanner] != workers*perWorker {
		t.Errorf("reasons = %v", s.MonitorReasons)
	}
	if s.SoundWidth.Count != int64(workers*perWorker) {
		t.Errorf("histogram count = %d", s.SoundWidth.Count)
	}
	var bucketSum int64
	for _, b := range s.SoundWidth.Buckets {
		bucketSum += b
	}
	if bucketSum != s.SoundWidth.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.SoundWidth.Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.OnStep(StepProbe{SoundWidth: 1, FusedWidth: 0.5, PlannerNs: 2000})
	m.OnEpisode(EpisodeOutcome{Reached: true, Eta: 0.1, Steps: 1})
	out, err := m.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Episodes != 1 || back.Steps != 1 || back.SoundWidth.Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSnapshotText(t *testing.T) {
	m := NewMetrics()
	m.OnStep(StepProbe{Emergency: true, SoundWidth: 1, FusedWidth: 0.5})
	m.OnMonitorDecision(ReasonBoundary)
	m.OnEpisode(EpisodeOutcome{Collided: true, Eta: -1, Steps: 1})
	text := m.Snapshot().Text()
	for _, want := range []string{"episodes:", "collided 1", "boundary=1", "sound width"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestMultiAndProgressFunc(t *testing.T) {
	m := NewMetrics()
	var calls int
	p := ProgressFunc(func(done, total int64) { calls++ })
	c := Multi(m, nil, p)
	c.OnStep(StepProbe{SoundWidth: 1})
	c.OnMonitorDecision(ReasonHold)
	c.OnEpisode(EpisodeOutcome{Reached: true})
	c.OnProgress(1, 2)
	if calls != 1 {
		t.Errorf("progress calls = %d", calls)
	}
	s := m.Snapshot()
	if s.Steps != 1 || s.Episodes != 1 || s.MonitorReasons[ReasonHold] != 1 {
		t.Errorf("multi did not fan out: %+v", s)
	}
	if done, _ := m.Progress(); done != 1 {
		t.Errorf("progress not forwarded: %d", done)
	}
	// Degenerate bundles collapse.
	if _, ok := Multi().(Nop); !ok {
		t.Error("empty Multi is not Nop")
	}
	if Multi(m) != Collector(m) {
		t.Error("single-element Multi did not collapse")
	}
}

func TestNopIsCollector(t *testing.T) {
	var c Collector = Nop{}
	c.OnStep(StepProbe{})
	c.OnMonitorDecision(ReasonPlanner)
	c.OnEpisode(EpisodeOutcome{})
	c.OnProgress(0, 0)
}
