package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMetricsGuardEventCounters(t *testing.T) {
	m := NewMetrics()
	m.OnGuardEvent(GuardEvent{T: 0.1, Fault: GuardFaultPanic, Fallback: GuardFallbackEmergency, State: "nominal", From: "nominal"})
	m.OnGuardEvent(GuardEvent{T: 0.2, Fault: GuardFaultNonFinite, Fallback: GuardFallbackLastGood, State: "nominal", From: "nominal"})
	m.OnGuardEvent(GuardEvent{T: 0.3, Fault: GuardFaultNonFinite, Fallback: GuardFallbackEmergency, State: "degraded", From: "nominal", Transition: true})
	m.OnGuardEvent(GuardEvent{T: 0.4, Fault: "martian", Fallback: "martian", State: "degraded", From: "degraded"})

	s := m.Snapshot()
	if s.GuardEvents != 4 {
		t.Fatalf("GuardEvents = %d", s.GuardEvents)
	}
	if s.GuardFaults[GuardFaultPanic] != 1 || s.GuardFaults[GuardFaultNonFinite] != 2 || s.GuardFaults["other"] != 1 {
		t.Fatalf("GuardFaults = %v", s.GuardFaults)
	}
	if s.GuardFallbacks[GuardFallbackEmergency] != 2 || s.GuardFallbacks[GuardFallbackLastGood] != 1 || s.GuardFallbacks["other"] != 1 {
		t.Fatalf("GuardFallbacks = %v", s.GuardFallbacks)
	}
	if s.GuardTransitionTotal != 1 || len(s.GuardTransitions) != 1 {
		t.Fatalf("transitions: total %d, log %v", s.GuardTransitionTotal, s.GuardTransitions)
	}
	tr := s.GuardTransitions[0]
	if tr.T != 0.3 || tr.From != "nominal" || tr.To != "degraded" {
		t.Fatalf("transition = %+v", tr)
	}

	text := s.Text()
	for _, want := range []string{"guard events:", "panic=1", "non-finite=2", "emergency=2"} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsGuardNoEventsStaysEmpty(t *testing.T) {
	s := NewMetrics().Snapshot()
	if s.GuardEvents != 0 || s.GuardFaults != nil || s.GuardFallbacks != nil || s.GuardTransitions != nil {
		t.Fatalf("zero-guard snapshot not empty: %+v", s)
	}
	if strings.Contains(s.Text(), "guard") {
		t.Error("text dump mentions guard with no guard events")
	}
}

func TestMetricsGuardTransitionLogBounded(t *testing.T) {
	m := NewMetrics()
	const n = maxGuardTransitions + 50
	for i := 0; i < n; i++ {
		m.OnGuardEvent(GuardEvent{T: float64(i), From: "nominal", State: "degraded", Transition: true})
	}
	s := m.Snapshot()
	if len(s.GuardTransitions) != maxGuardTransitions {
		t.Fatalf("log length %d, want bound %d", len(s.GuardTransitions), maxGuardTransitions)
	}
	if s.GuardTransitionTotal != n {
		t.Fatalf("transition total %d, want %d", s.GuardTransitionTotal, n)
	}
}

func TestMetricsGuardEventConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.OnGuardEvent(GuardEvent{T: float64(i), Fault: GuardFaultPanic, Fallback: GuardFallbackEmergency, Transition: i%10 == 0, From: "nominal", State: "degraded"})
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.GuardEvents != 4000 || s.GuardFaults[GuardFaultPanic] != 4000 {
		t.Fatalf("concurrent counts: events %d faults %v", s.GuardEvents, s.GuardFaults)
	}
	if s.GuardTransitionTotal != 400 {
		t.Fatalf("transition total %d", s.GuardTransitionTotal)
	}
}

// TestMetricsGuardCounterOverflow pins the documented overflow behaviour
// of the fault-event counters: plain int64 wrap-around, no saturation and
// no panic.
func TestMetricsGuardCounterOverflow(t *testing.T) {
	m := NewMetrics()
	m.guardFaults[0].Store(math.MaxInt64) // knownGuardFaults[0] = panic
	m.guardEvents.Store(math.MaxInt64)
	m.OnGuardEvent(GuardEvent{Fault: GuardFaultPanic})
	if got := m.guardFaults[0].Load(); got != math.MinInt64 {
		t.Fatalf("fault counter after overflow = %d, want wrap to MinInt64", got)
	}
	if got := m.guardEvents.Load(); got != math.MinInt64 {
		t.Fatalf("event counter after overflow = %d, want wrap to MinInt64", got)
	}
	// The snapshot must survive the wrapped (negative) counters: the
	// negative value is elided from the by-name map (n == 0 filter keeps
	// only nonzero, negative included) — pin the actual behaviour.
	s := m.Snapshot()
	if s.GuardFaults[GuardFaultPanic] != math.MinInt64 {
		t.Fatalf("snapshot fault count = %v", s.GuardFaults)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is NaN.
	empty := NewHistogram(1, 2).Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(empty.Quantile(q)) {
			t.Errorf("empty histogram Quantile(%v) = %v, want NaN", q, empty.Quantile(q))
		}
	}

	// Single observation (single populated bucket): q=0 → Min, q=1 → Max,
	// interior quantiles clamp into [Min, Max] (here Min == Max).
	single := NewHistogram(1, 2)
	single.Observe(1.5)
	ss := single.Snapshot()
	if got := ss.Quantile(0); got != 1.5 {
		t.Errorf("single Quantile(0) = %v", got)
	}
	if got := ss.Quantile(1); got != 1.5 {
		t.Errorf("single Quantile(1) = %v", got)
	}
	if got := ss.Quantile(0.5); got != 1.5 {
		t.Errorf("single Quantile(0.5) = %v", got)
	}

	// q outside [0,1] clamps to Min/Max; NaN propagates.
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	hs := h.Snapshot()
	if got := hs.Quantile(-0.5); got != hs.Min {
		t.Errorf("Quantile(-0.5) = %v, want Min %v", got, hs.Min)
	}
	if got := hs.Quantile(2); got != hs.Max {
		t.Errorf("Quantile(2) = %v, want Max %v", got, hs.Max)
	}
	if !math.IsNaN(hs.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) not NaN")
	}
	// Monotone in q and clamped into [Min, Max].
	prev := hs.Quantile(0)
	for q := 0.05; q <= 1; q += 0.05 {
		v := hs.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		if v < hs.Min || v > hs.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, hs.Min, hs.Max)
		}
		prev = v
	}
}
