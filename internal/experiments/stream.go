package experiments

import (
	"fmt"

	"safeplan/internal/core"
	"safeplan/internal/eval"
	"safeplan/internal/sim"
)

// StreamRow is one line of the multi-vehicle extension study: the three
// designs against an oncoming stream of a given size.
type StreamRow struct {
	Vehicles    int
	PlannerType string

	ReachTime     float64
	SafeRate      float64
	Eta           float64
	EmergencyFreq float64
}

// StreamSizes is the vehicle-count sweep of the extension study.
func StreamSizes() []int { return []int{1, 2, 3, 4} }

// StreamTable evaluates the pure, basic, and ultimate designs (aggressive
// κ_n — the interesting case, since its collision risk compounds per
// vehicle) against oncoming streams of increasing size under the
// "messages delayed" setting.  This extends the paper's single-vehicle
// evaluation to its own multi-vehicle system model (§II-A).
func StreamTable(pl Planners, n int, seed int64) ([]StreamRow, error) {
	if n <= 0 {
		n = DefaultEpisodes / 4
	}
	p := pl.Aggr
	var rows []StreamRow
	for _, vehicles := range StreamSizes() {
		base := sim.DefaultMultiConfig()
		s := StandardSettings()[1] // messages delayed
		base.Comms = s.Comms
		base.Sensor = s.Sensor
		base.Vehicles = vehicles
		sc := base.Scenario

		designs := []struct {
			label string
			agent core.MultiAgent
			info  bool
		}{
			{"pure NN", &core.MultiPure{Cfg: sc, Planner: p}, false},
			{"basic", core.NewMultiBasic(sc, p), false},
			{"ultimate", core.NewMultiUltimate(sc, p), true},
		}
		for _, d := range designs {
			cfg := base
			cfg.InfoFilter = d.info
			rs, err := sim.RunMultiCampaign(cfg, d.agent, n, sim.CampaignOptions{BaseSeed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: stream %d/%s: %w", vehicles, d.label, err)
			}
			st := eval.Aggregate(rs)
			rows = append(rows, StreamRow{
				Vehicles:      vehicles,
				PlannerType:   d.label,
				ReachTime:     st.MeanReachTimeSafe,
				SafeRate:      st.SafeRate(),
				Eta:           st.MeanEta,
				EmergencyFreq: st.EmergencyFreq,
			})
		}
	}
	return rows, nil
}
