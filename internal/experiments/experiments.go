// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): Tables I–II (planner comparison under three
// communication settings), Figures 5a–5f (reaching time and emergency
// frequency versus transmission period, drop probability, and sensor
// uncertainty), Figures 6a–6b (information-filter and passing-window
// traces), the §V-C RMSE study, and the ablations listed in DESIGN.md §6.
//
// Every experiment is a pure function of (configuration, episode count,
// base seed) and is exercised both by cmd/tables / cmd/figures and by the
// benchmark harness in the repository root.
package experiments

import (
	"fmt"
	"math"
	"path/filepath"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/eval"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

// Defaults used by the shipped harness; the paper ran 80 000 episodes per
// setting (pass n = 80000 for full scale).
const (
	DefaultEpisodes = 2000
	DefaultSeed     = 42

	// DelayedDropProb is the representative drop probability used inside
	// Tables I–II for the "messages delayed" row (the paper sweeps p_d in
	// Fig. 5c/d but does not state the table's value; see EXPERIMENTS.md).
	DelayedDropProb = 0.5
	// DelayedDelay is the paper's Δt_d.
	DelayedDelay = 0.25
	// LostSensorDelta is the representative sensor uncertainty for the
	// "messages lost" table row (the paper sweeps δ in Fig. 5e/f).
	LostSensorDelta = 2.0
)

// Setting is one communication scenario of the evaluation.
type Setting struct {
	Name   string
	Comms  comms.Config
	Sensor sensor.Config
}

// StandardSettings returns the paper's three communication settings.
func StandardSettings() []Setting {
	return []Setting{
		{Name: "no disturbance", Comms: comms.NoDisturbance(), Sensor: sensor.Uniform(1)},
		{Name: "messages delayed", Comms: comms.Delayed(DelayedDelay, DelayedDropProb), Sensor: sensor.Uniform(1)},
		{Name: "messages lost", Comms: comms.Lost(), Sensor: sensor.Uniform(LostSensorDelta)},
	}
}

// PlannerKind selects which κ_n family an experiment evaluates.
type PlannerKind int

// The two NN-planner families of the evaluation.
const (
	Conservative PlannerKind = iota
	Aggressive
)

func (k PlannerKind) String() string {
	if k == Conservative {
		return "conservative"
	}
	return "aggressive"
}

// Planners bundles the two κ_n used throughout the evaluation.
type Planners struct {
	Cons planner.Planner
	Aggr planner.Planner
}

// ExpertPlanners returns the analytic expert policies as κ_n — fast to
// construct, used by unit tests and quick runs.
func ExpertPlanners(cfg leftturn.Config) Planners {
	return Planners{
		Cons: planner.ConservativeExpert(cfg),
		Aggr: planner.AggressiveExpert(cfg),
	}
}

// TrainedPlanners imitation-trains the two NN planners (the evaluation's
// κ_n,cons and κ_n,aggr).  Deterministic for a given seed.
func TrainedPlanners(cfg leftturn.Config, seed int64) (Planners, error) {
	cons, _, err := planner.TrainNNPlanner(cfg, planner.ConservativeExpert(cfg), "nn-cons",
		planner.TrainOptions{Seed: seed})
	if err != nil {
		return Planners{}, fmt.Errorf("experiments: train conservative: %w", err)
	}
	aggr, _, err := planner.TrainNNPlanner(cfg, planner.AggressiveExpert(cfg), "nn-aggr",
		planner.TrainOptions{Seed: seed + 1})
	if err != nil {
		return Planners{}, fmt.Errorf("experiments: train aggressive: %w", err)
	}
	return Planners{Cons: cons, Aggr: aggr}, nil
}

// Pick returns the planner of the given kind.
func (p Planners) Pick(k PlannerKind) planner.Planner {
	if k == Conservative {
		return p.Cons
	}
	return p.Aggr
}

// SettingConfig builds the sim configuration for a setting — the exact
// configuration the table experiments run, exported so campaign harnesses
// (cmd/bench) benchmark the same workloads the paper evaluates.
func SettingConfig(s Setting) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Comms = s.Comms
	cfg.Sensor = s.Sensor
	return cfg
}

// baseSim is the internal alias used by the table/figure experiments.
func baseSim(s Setting) sim.Config { return SettingConfig(s) }

// agents builds the three evaluation agents (pure, basic, ultimate) with
// their matching filter configurations.
func agents(sc leftturn.Config, p planner.Planner, base sim.Config) []struct {
	Label string
	Agent core.Agent
	Cfg   sim.Config
} {
	pureCfg := base
	basicCfg := base
	ultCfg := base
	ultCfg.InfoFilter = true
	return []struct {
		Label string
		Agent core.Agent
		Cfg   sim.Config
	}{
		{"pure NN", &core.PureNN{Cfg: sc, Planner: p}, pureCfg},
		{"basic", core.NewBasic(sc, p), basicCfg},
		{"ultimate", core.NewUltimate(sc, p), ultCfg},
	}
}

// TableRow is one line of Table I or II.
type TableRow struct {
	Setting     string
	PlannerType string

	ReachTime     float64 // mean reaching time over safe episodes [s]
	SafeRate      float64 // fraction of safe episodes
	Eta           float64 // mean η
	Winning       float64 // fraction of episodes the ultimate design beats this one (NaN for the ultimate row)
	EmergencyFreq float64 // fraction of steps under κ_e (NaN for the pure row)
}

// Table regenerates Table I (kind = Conservative) or Table II
// (kind = Aggressive): for each communication setting it runs the pure,
// basic, and ultimate designs over the same n seeds and aggregates the
// paper's statistics.
func Table(kind PlannerKind, pl Planners, n int, seed int64) ([]TableRow, error) {
	if n <= 0 {
		n = DefaultEpisodes
	}
	p := pl.Pick(kind)
	var rows []TableRow
	for _, s := range StandardSettings() {
		base := baseSim(s)
		stats := make([]eval.Stats, 3)
		ags := agents(base.Scenario, p, base)
		for i, ag := range ags {
			rs, err := sim.RunCampaign(ag.Cfg, ag.Agent, n, sim.CampaignOptions{BaseSeed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", s.Name, ag.Label, err)
			}
			stats[i] = eval.Aggregate(rs)
		}
		for i, ag := range ags {
			row := TableRow{
				Setting:       s.Name,
				PlannerType:   ag.Label,
				ReachTime:     stats[i].MeanReachTimeSafe,
				SafeRate:      stats[i].SafeRate(),
				Eta:           stats[i].MeanEta,
				Winning:       math.NaN(),
				EmergencyFreq: stats[i].EmergencyFreq,
			}
			if ag.Label != "ultimate" {
				w, err := eval.WinningPercentage(stats[2].Etas, stats[i].Etas)
				if err != nil {
					return nil, err
				}
				row.Winning = w
			}
			if ag.Label == "pure NN" {
				row.EmergencyFreq = math.NaN()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Model file names used by SavePlanners/LoadPlanners (and cmd/train).
const (
	ConsModelFile = "nn-cons.json"
	AggrModelFile = "nn-aggr.json"
)

// SavePlanners writes both NN planners to dir.  It fails if either planner
// is not an *planner.NNPlanner (experts have nothing to save).
func SavePlanners(pl Planners, dir string) error {
	for _, m := range []struct {
		p    planner.Planner
		name string
	}{{pl.Cons, ConsModelFile}, {pl.Aggr, AggrModelFile}} {
		nnp, ok := m.p.(*planner.NNPlanner)
		if !ok {
			return fmt.Errorf("experiments: %T is not an NN planner", m.p)
		}
		if err := nnp.Save(filepath.Join(dir, m.name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadPlanners reads the two NN planners saved by SavePlanners from dir.
func LoadPlanners(dir string, cfg leftturn.Config) (Planners, error) {
	cons, err := planner.LoadNNPlanner(filepath.Join(dir, ConsModelFile), "nn-cons", cfg.Ego)
	if err != nil {
		return Planners{}, err
	}
	aggr, err := planner.LoadNNPlanner(filepath.Join(dir, AggrModelFile), "nn-aggr", cfg.Ego)
	if err != nil {
		return Planners{}, err
	}
	return Planners{Cons: cons, Aggr: aggr}, nil
}
