package experiments

import (
	"fmt"

	"safeplan/internal/carfollow"
	"safeplan/internal/eval"
	"safeplan/internal/sim"
)

// CarFollowRow is one line of the car-following case-study table.
type CarFollowRow struct {
	Setting     string
	PlannerType string

	ReachTime     float64
	SafeRate      float64
	Eta           float64
	EmergencyFreq float64
}

// CarFollowTable evaluates the second case study (paper §II-A's
// distance-gap unsafe set) with the aggressive tailgating κ_n under the
// three communication settings: the same pure/basic/ultimate comparison
// as Tables I–II, demonstrating that the framework generalizes beyond the
// left turn.
func CarFollowTable(n int, seed int64) ([]CarFollowRow, error) {
	if n <= 0 {
		n = DefaultEpisodes / 4
	}
	sc := carfollow.DefaultConfig()
	aggr := carfollow.AggressiveExpert(sc)
	var rows []CarFollowRow
	for _, s := range StandardSettings() {
		base := carfollow.DefaultSimConfig()
		base.Comms = s.Comms
		base.Sensor = s.Sensor
		designs := []struct {
			label string
			agent carfollow.Agent
			info  bool
		}{
			{"pure NN", &carfollow.Pure{Cfg: sc, Planner: aggr}, false},
			{"basic", carfollow.NewBasic(sc, aggr), false},
			{"ultimate", carfollow.NewUltimate(sc, aggr), true},
		}
		for _, d := range designs {
			cfg := base
			cfg.InfoFilter = d.info
			rs, err := carfollow.RunCampaign(cfg, d.agent, n, sim.CampaignOptions{BaseSeed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: carfollow %s/%s: %w", s.Name, d.label, err)
			}
			st := eval.Aggregate(rs)
			rows = append(rows, CarFollowRow{
				Setting:       s.Name,
				PlannerType:   d.label,
				ReachTime:     st.MeanReachTimeSafe,
				SafeRate:      st.SafeRate(),
				Eta:           st.MeanEta,
				EmergencyFreq: st.EmergencyFreq,
			})
		}
	}
	return rows, nil
}
