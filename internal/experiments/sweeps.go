package experiments

import (
	"fmt"

	"safeplan/internal/comms"
	"safeplan/internal/eval"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

// SweepPoint is one x-position of a Figure-5 sweep: the reaching time and
// emergency frequency of the pure, basic, and ultimate designs built around
// the conservative κ_n (the paper sweeps κ_n,cons; Fig. 5 caption).
type SweepPoint struct {
	X float64 // swept parameter value

	PureReach, BasicReach, UltReach float64
	PureEm, BasicEm, UltEm          float64
	PureSafe, BasicSafe, UltSafe    float64
}

// sweepAt evaluates the three designs at one parameter point.
func sweepAt(x float64, base sim.Config, pl Planners, kind PlannerKind, n int, seed int64) (SweepPoint, error) {
	pt := SweepPoint{X: x}
	p := pl.Pick(kind)
	for i, ag := range agents(base.Scenario, p, base) {
		rs, err := sim.RunCampaign(ag.Cfg, ag.Agent, n, sim.CampaignOptions{BaseSeed: seed})
		if err != nil {
			return pt, fmt.Errorf("experiments: sweep x=%v %s: %w", x, ag.Label, err)
		}
		st := eval.Aggregate(rs)
		switch i {
		case 0:
			pt.PureReach, pt.PureEm, pt.PureSafe = st.MeanReachTimeSafe, st.EmergencyFreq, st.SafeRate()
		case 1:
			pt.BasicReach, pt.BasicEm, pt.BasicSafe = st.MeanReachTimeSafe, st.EmergencyFreq, st.SafeRate()
		case 2:
			pt.UltReach, pt.UltEm, pt.UltSafe = st.MeanReachTimeSafe, st.EmergencyFreq, st.SafeRate()
		}
	}
	return pt, nil
}

// TransmissionSteps is the Δt_m = Δt_s sweep of Fig. 5a/5b.
func TransmissionSteps() []float64 {
	var xs []float64
	for j := 1; j <= 20; j++ {
		xs = append(xs, 0.05*float64(j))
	}
	return xs
}

// SweepTransmission regenerates Fig. 5a (reaching time) and Fig. 5b
// (emergency frequency) versus the transmission/sensing period under
// otherwise perfect communication.
func SweepTransmission(pl Planners, n int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, x := range TransmissionSteps() {
		base := baseSim(StandardSettings()[0])
		base.DtM, base.DtS = x, x
		pt, err := sweepAt(x, base, pl, Conservative, n, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// DropProbabilities is the paper's p_d sweep {0.05·j | j = 0..19}
// (Fig. 5c/5d).
func DropProbabilities() []float64 {
	var xs []float64
	for j := 0; j < 20; j++ {
		xs = append(xs, 0.05*float64(j))
	}
	return xs
}

// SweepDrop regenerates Fig. 5c/5d: reaching time and emergency frequency
// versus the message drop probability with Δt_d = 0.25 s.
func SweepDrop(pl Planners, n int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, x := range DropProbabilities() {
		base := baseSim(Setting{Comms: comms.Delayed(DelayedDelay, x), Sensor: sensor.Uniform(1)})
		pt, err := sweepAt(x, base, pl, Conservative, n, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SensorUncertainties is the paper's δ sweep {1 + 0.2·j | j = 0..19}
// (Fig. 5e/5f).
func SensorUncertainties() []float64 {
	var xs []float64
	for j := 0; j < 20; j++ {
		xs = append(xs, 1+0.2*float64(j))
	}
	return xs
}

// SweepSensor regenerates Fig. 5e/5f: reaching time and emergency frequency
// versus the sensor uncertainty in the "messages lost" setting.
func SweepSensor(pl Planners, n int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, x := range SensorUncertainties() {
		base := baseSim(Setting{Comms: comms.Lost(), Sensor: sensor.Uniform(x)})
		pt, err := sweepAt(x, base, pl, Conservative, n, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
