package experiments

import (
	"math"
	"testing"

	"safeplan/internal/core"
	"safeplan/internal/sim"
)

func TestAdversarialSettingsValid(t *testing.T) {
	ss := AdversarialSettings()
	if len(ss) != 6 {
		t.Fatalf("settings = %d", len(ss))
	}
	for _, s := range ss {
		if s.Model == nil && s.Sensor == nil {
			t.Errorf("%s: empty setting", s.Name)
		}
		if s.Model != nil {
			if err := s.Model.Validate(); err != nil {
				t.Errorf("%s: %v", s.Name, err)
			}
		}
		if s.Sensor != nil {
			if err := s.Sensor.Validate(); err != nil {
				t.Errorf("%s: %v", s.Name, err)
			}
		}
		if err := adversarialSim(s).Validate(); err != nil {
			t.Errorf("%s: sim config invalid: %v", s.Name, err)
		}
	}
}

// TestAdversarialSafetyInvariant is the acceptance criterion for the
// disturbance subsystem: the compound planner must stay collision-free
// (η ≥ 0) under every adversarial model, for both κ_n families, over at
// least 1000 episodes each.  The monitor only relies on the sound
// estimate; every channel model preserves it (delivered messages carry
// exact sender state, and biased readings stay inside ±δ), so any
// collision here is a soundness bug, not a tuning issue.
func TestAdversarialSafetyInvariant(t *testing.T) {
	const episodes = 1000
	pl := testPlanners()
	for _, s := range AdversarialSettings() {
		for _, kind := range []PlannerKind{Conservative, Aggressive} {
			s, kind := s, kind
			t.Run(s.Name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				// Ultimate + information filter: the full design must never
				// collide.  Fused-estimate misses are tolerated here — with
				// the Kalman component on, the fused interval is an
				// efficiency estimate, not the safety-bearing one (the
				// monitor uses the sound estimate; see failure_test.go).
				ultCfg := adversarialSim(s)
				ultCfg.InfoFilter = true
				ult := core.NewUltimate(ultCfg.Scenario, pl.Pick(kind))
				rs, err := sim.RunCampaign(ultCfg, ult, episodes, sim.CampaignOptions{BaseSeed: testSeed})
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range rs {
					if r.Collided || r.Eta < 0 {
						t.Fatalf("episode %d (seed %d): ultimate collision under %s",
							i, testSeed+int64(i), s.Name)
					}
				}
				// Basic compound without the Kalman component: the fused
				// interval degenerates to the sound intersection, so any
				// violation is a genuine soundness bug in the disturbance
				// threading.
				basicCfg := adversarialSim(s)
				basic := core.NewBasic(basicCfg.Scenario, pl.Pick(kind))
				rs, err = sim.RunCampaign(basicCfg, basic, episodes, sim.CampaignOptions{BaseSeed: testSeed})
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range rs {
					if r.Collided || r.Eta < 0 {
						t.Fatalf("episode %d (seed %d): basic collision under %s",
							i, testSeed+int64(i), s.Name)
					}
					if r.FusedIntervalMisses > 0 {
						t.Fatalf("episode %d: %d fused-estimate misses under %s",
							i, r.FusedIntervalMisses, s.Name)
					}
					if r.SoundViolations > 0 {
						t.Fatalf("episode %d: %d sound-estimate violations under %s",
							i, r.SoundViolations, s.Name)
					}
				}
			})
		}
	}
}

func TestWorstCaseTableShape(t *testing.T) {
	rows, err := WorstCaseTable(Aggressive, testPlanners(), testN, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 settings × 3 designs
		t.Fatalf("rows = %d", len(rows))
	}
	for s := 0; s < 6; s++ {
		pure, basic, ult := rows[3*s], rows[3*s+1], rows[3*s+2]
		if basic.SafeRate != 1 || ult.SafeRate != 1 {
			t.Errorf("%s: compound safe rates %v / %v", pure.Setting, basic.SafeRate, ult.SafeRate)
		}
		if !math.IsNaN(pure.EmergencyFreq) {
			t.Errorf("%s: pure row has emergency frequency", pure.Setting)
		}
		if math.IsNaN(pure.Winning) {
			t.Errorf("%s: pure row missing winning percentage", pure.Setting)
		}
	}
	// The aggressive pure planner must actually be stressed: unsafe in at
	// least the full worst-case setting.
	if last := rows[15]; last.SafeRate >= 1 {
		t.Errorf("pure aggressive fully safe under %q (%v)", last.Setting, last.SafeRate)
	}
}

func TestSweepBurstShape(t *testing.T) {
	pts, err := SweepBurst(testPlanners(), 60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 || pts[0].X != 1 || pts[9].X != 10 {
		t.Fatalf("burst sweep x values wrong: %v … %v", pts[0].X, pts[len(pts)-1].X)
	}
	for _, pt := range pts {
		if pt.UltSafe != 1 || pt.BasicSafe != 1 {
			t.Errorf("x=%v: compound unsafe", pt.X)
		}
	}
	// Longer bursts mean a higher stationary loss rate, so the ultimate
	// design's reaching time must degrade across the sweep.
	if pts[9].UltReach <= pts[0].UltReach {
		t.Errorf("ultimate reach should degrade with burst length: %v → %v",
			pts[0].UltReach, pts[9].UltReach)
	}
}
