package experiments

import (
	"fmt"
	"math"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/eval"
	"safeplan/internal/platoon"
	"safeplan/internal/sim"
)

// PlatoonRow is one line of the platoon case-study table.
type PlatoonRow struct {
	Setting  string
	Vehicles int

	SafeRate      float64
	Eta           float64
	EmergencyFreq float64
	// MinLinkGap is the smallest bumper gap observed on any follower link
	// across the campaign [m]; NaN when the chain has no follower links
	// (Vehicles = 2 — the car-following scenario, covered by its own table).
	MinLinkGap float64
	// MaxAmp is the worst consecutive-link amplification of the peak gap
	// error observed in any episode: max over links ℓ of
	// peak|e_{ℓ+1}| / max(peak|e_ℓ|, floor).  Values at or below
	// 1 + platoon.DefaultAmpTol indicate string-stable behaviour; NaN when
	// the chain has fewer than two follower links.
	MaxAmp float64
}

// PlatoonTable evaluates the N-vehicle chained-link platoon under the
// ultimate compound design: first a chain-length sweep under the
// "messages delayed" setting, then — at a fixed four-vehicle chain — the
// adversarial burst preset rotated over each individual link, the
// disturbance geometry the per-link channel design exists for.
func PlatoonTable(n int, seed int64) ([]PlatoonRow, error) {
	if n <= 0 {
		n = DefaultEpisodes / 4
	}
	type entry struct {
		label string
		cfg   platoon.SimConfig
	}
	var entries []entry

	delayed := StandardSettings()[1]
	for _, vehicles := range []int{2, 3, 4, 6} {
		cfg := platoon.DefaultSimConfig()
		cfg.Vehicles = vehicles
		cfg.Comms = delayed.Comms
		cfg.Sensor = delayed.Sensor
		cfg.InfoFilter = true
		entries = append(entries, entry{fmt.Sprintf("delayed all links, N=%d", vehicles), cfg})
	}

	bm, err := disturb.Preset("burst")
	if err != nil {
		return nil, fmt.Errorf("experiments: platoon: %w", err)
	}
	for link := 0; link < 3; link++ {
		cfg := platoon.DefaultSimConfig() // four vehicles, three links
		cfg.InfoFilter = true
		lc := make([]comms.Config, cfg.Vehicles-1)
		for l := range lc {
			lc[l] = comms.NoDisturbance()
		}
		lc[link] = comms.Disturbed(bm)
		cfg.LinkComms = lc
		entries = append(entries, entry{fmt.Sprintf("burst on link %d, N=4", link), cfg})
	}

	var rows []PlatoonRow
	for _, e := range entries {
		sc := e.cfg.LinkScenario()
		agent := carfollow.NewUltimate(sc, carfollow.AggressiveExpert(sc))
		rs, err := platoon.RunCampaign(e.cfg, agent, n, sim.CampaignOptions{BaseSeed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: platoon %s: %w", e.label, err)
		}
		st := eval.Aggregate(rs)
		rows = append(rows, PlatoonRow{
			Setting:       e.label,
			Vehicles:      e.cfg.Vehicles,
			SafeRate:      st.SafeRate(),
			Eta:           st.MeanEta,
			EmergencyFreq: st.EmergencyFreq,
			MinLinkGap:    minLinkGap(rs),
			MaxAmp:        maxLinkAmplification(rs),
		})
	}
	return rows, nil
}

// minLinkGap is the smallest follower-link gap observed anywhere in the
// campaign; NaN when no episode recorded link statistics.
func minLinkGap(rs []sim.Result) float64 {
	m := math.Inf(1)
	for _, r := range rs {
		for _, l := range r.Links {
			m = math.Min(m, l.MinGap)
		}
	}
	if math.IsInf(m, 1) {
		return math.NaN()
	}
	return m
}

// maxLinkAmplification is the worst consecutive-link peak-gap-error ratio
// observed in any episode, floored the same way the string-stability
// invariant floors its comparison so near-zero upstream errors don't
// explode the ratio.
func maxLinkAmplification(rs []sim.Result) float64 {
	m := math.NaN()
	for _, r := range rs {
		for l := 0; l+1 < len(r.Links); l++ {
			amp := r.Links[l+1].PeakGapErr / math.Max(r.Links[l].PeakGapErr, platoon.DefaultFloor)
			if math.IsNaN(m) || amp > m {
				m = amp
			}
		}
	}
	return m
}
