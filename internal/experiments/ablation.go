package experiments

import (
	"fmt"

	"safeplan/internal/core"
	"safeplan/internal/eval"
	"safeplan/internal/monitor"
	"safeplan/internal/sim"
)

// AblationRow reports one design variant of the ablation study
// (DESIGN.md §6) under the "messages delayed" setting.
type AblationRow struct {
	Variant string

	ReachTime     float64
	SafeRate      float64
	Eta           float64
	EmergencyFreq float64
}

// Ablations runs the design-choice ablations around the ultimate compound
// planner with the conservative κ_n:
//
//	full            — information filter + aggressive set (the ultimate design)
//	no-filter       — aggressive set but no Kalman component
//	no-aggressive   — information filter but conservative κ_n input
//	no-replay       — information filter without message rollback/replay
//	fused-monitor   — the paper's literal design: the monitor consumes the
//	                  Kalman-joined estimate instead of the sound one
//	basic           — neither technique (the basic compound design)
func Ablations(pl Planners, n int, seed int64) ([]AblationRow, error) {
	if n <= 0 {
		n = DefaultEpisodes
	}
	base := baseSim(StandardSettings()[1]) // messages delayed
	sc := base.Scenario
	p := pl.Cons

	type variant struct {
		name  string
		cfg   sim.Config
		agent core.Agent
	}
	mk := func(name string, infoFilter, noReplay, aggressive, fusedMonitor bool) variant {
		cfg := base
		cfg.InfoFilter = infoFilter
		cfg.NoReplay = noReplay
		ag := &core.Compound{
			Cfg:            sc,
			Planner:        p,
			Monitor:        monitor.New(sc),
			AggressiveSet:  aggressive,
			MonitorOnFused: fusedMonitor,
		}
		return variant{name: name, cfg: cfg, agent: ag}
	}
	variants := []variant{
		mk("full", true, false, true, false),
		mk("no-filter", false, false, true, false),
		mk("no-aggressive", true, false, false, false),
		mk("no-replay", true, true, true, false),
		mk("fused-monitor", true, false, true, true),
		mk("basic", false, false, false, false),
	}

	var rows []AblationRow
	for _, v := range variants {
		rs, err := sim.RunCampaign(v.cfg, v.agent, n, sim.CampaignOptions{BaseSeed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		st := eval.Aggregate(rs)
		rows = append(rows, AblationRow{
			Variant:       v.name,
			ReachTime:     st.MeanReachTimeSafe,
			SafeRate:      st.SafeRate(),
			Eta:           st.MeanEta,
			EmergencyFreq: st.EmergencyFreq,
		})
	}
	return rows, nil
}
