package experiments

import (
	"math"
	"testing"

	"safeplan/internal/leftturn"
)

const (
	testN    = 120
	testSeed = 7
)

func testPlanners() Planners {
	return ExpertPlanners(leftturn.DefaultConfig())
}

func TestStandardSettings(t *testing.T) {
	ss := StandardSettings()
	if len(ss) != 3 {
		t.Fatalf("settings = %d", len(ss))
	}
	if !ss[2].Comms.Lost {
		t.Fatal("third setting must be messages-lost")
	}
	if ss[1].Comms.Delay != DelayedDelay || ss[1].Comms.DropProb != DelayedDropProb {
		t.Fatalf("delayed setting = %+v", ss[1].Comms)
	}
}

func TestPlannerKindString(t *testing.T) {
	if Conservative.String() != "conservative" || Aggressive.String() != "aggressive" {
		t.Fatal("kind names wrong")
	}
}

func TestTableConservativeShape(t *testing.T) {
	rows, err := Table(Conservative, testPlanners(), testN, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 settings × 3 designs
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper shape: every design 100% safe with the conservative κ_n.
		if r.SafeRate != 1 {
			t.Errorf("%s/%s safe rate = %v", r.Setting, r.PlannerType, r.SafeRate)
		}
	}
	// Ultimate must be faster than pure and basic in every setting, and
	// pure ≈ basic.
	for s := 0; s < 3; s++ {
		pure, basic, ult := rows[3*s], rows[3*s+1], rows[3*s+2]
		if ult.ReachTime >= pure.ReachTime {
			t.Errorf("%s: ultimate %v not faster than pure %v", pure.Setting, ult.ReachTime, pure.ReachTime)
		}
		if math.Abs(pure.ReachTime-basic.ReachTime) > 0.2 {
			t.Errorf("%s: basic %v deviates from pure %v", pure.Setting, basic.ReachTime, pure.ReachTime)
		}
		if !math.IsNaN(pure.EmergencyFreq) {
			t.Error("pure row should have no emergency frequency")
		}
		if math.IsNaN(ult.EmergencyFreq) || ult.EmergencyFreq <= basic.EmergencyFreq {
			t.Errorf("%s: ultimate emergency %v should exceed basic %v",
				pure.Setting, ult.EmergencyFreq, basic.EmergencyFreq)
		}
		if !math.IsNaN(ult.Winning) {
			t.Error("ultimate row should have no winning percentage")
		}
		if math.IsNaN(pure.Winning) || pure.Winning < 0 || pure.Winning > 1 {
			t.Errorf("pure winning = %v", pure.Winning)
		}
	}
	// Degradation ordering across settings: none ≤ delayed ≤ lost for the
	// ultimate design's reaching time.
	if !(rows[2].ReachTime <= rows[5].ReachTime+0.05 && rows[5].ReachTime <= rows[8].ReachTime+0.05) {
		t.Errorf("ultimate degradation ordering violated: %v / %v / %v",
			rows[2].ReachTime, rows[5].ReachTime, rows[8].ReachTime)
	}
}

func TestTableAggressiveShape(t *testing.T) {
	rows, err := Table(Aggressive, testPlanners(), testN, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		pure, basic, ult := rows[3*s], rows[3*s+1], rows[3*s+2]
		// Paper shape: the pure aggressive planner is substantially unsafe;
		// both compound designs are 100% safe.
		if pure.SafeRate > 0.9 {
			t.Errorf("%s: pure aggressive safe rate %v too high", pure.Setting, pure.SafeRate)
		}
		if basic.SafeRate != 1 || ult.SafeRate != 1 {
			t.Errorf("%s: compound safe rates %v / %v", pure.Setting, basic.SafeRate, ult.SafeRate)
		}
		// Pure is fastest when safe (it just floors it).
		if pure.ReachTime >= basic.ReachTime {
			t.Errorf("%s: pure %v not faster than basic %v", pure.Setting, pure.ReachTime, basic.ReachTime)
		}
		// Mean η of the pure design suffers from the collisions.
		if pure.Eta >= ult.Eta {
			t.Errorf("%s: pure η %v should trail ultimate %v", pure.Setting, pure.Eta, ult.Eta)
		}
	}
}

func TestTableDefaultEpisodes(t *testing.T) {
	// n ≤ 0 falls back to the default count; use the expert planners and
	// only verify it doesn't error by running the smallest real call.
	if _, err := Table(Conservative, testPlanners(), 10, testSeed); err != nil {
		t.Fatal(err)
	}
}

func TestSweepTransmissionShape(t *testing.T) {
	pts, err := SweepTransmission(testPlanners(), 60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.X != 0.05 || last.X != 1.0 {
		t.Fatalf("x range [%v, %v]", first.X, last.X)
	}
	// Ultimate stays below pure everywhere; reaching time degrades with the
	// period for the ultimate design.
	for _, pt := range pts {
		if pt.UltReach >= pt.PureReach {
			t.Errorf("x=%v: ultimate %v not below pure %v", pt.X, pt.UltReach, pt.PureReach)
		}
		if pt.UltSafe != 1 || pt.BasicSafe != 1 {
			t.Errorf("x=%v: compound unsafe", pt.X)
		}
	}
	if last.UltReach <= first.UltReach {
		t.Errorf("ultimate reach should degrade with the period: %v → %v", first.UltReach, last.UltReach)
	}
}

func TestSweepDropShape(t *testing.T) {
	pts, err := SweepDrop(testPlanners(), 60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 || pts[0].X != 0 || math.Abs(pts[19].X-0.95) > 1e-9 {
		t.Fatalf("drop sweep x values wrong: %v … %v", pts[0].X, pts[19].X)
	}
	for _, pt := range pts {
		if pt.UltReach >= pt.PureReach {
			t.Errorf("pd=%v: ultimate %v not below pure %v", pt.X, pt.UltReach, pt.PureReach)
		}
	}
}

func TestSweepSensorShape(t *testing.T) {
	pts, err := SweepSensor(testPlanners(), 60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 || pts[0].X != 1 || math.Abs(pts[19].X-4.8) > 1e-9 {
		t.Fatalf("sensor sweep x values wrong: %v … %v", pts[0].X, pts[19].X)
	}
	// Reaching time grows with sensor uncertainty for every design.
	if pts[19].UltReach <= pts[0].UltReach {
		t.Errorf("ultimate should degrade with δ: %v → %v", pts[0].UltReach, pts[19].UltReach)
	}
	if pts[19].PureReach <= pts[0].PureReach {
		t.Errorf("pure should degrade with δ: %v → %v", pts[0].PureReach, pts[19].PureReach)
	}
}

func TestFilterTrace(t *testing.T) {
	samples, err := FilterTrace(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 100 {
		t.Fatalf("trace too short: %d", len(samples))
	}
	// After the transient, the filtered estimate must track the truth much
	// better than the raw measurements (Fig. 6a's message).
	var rawErr, filtErr float64
	n := 0
	for _, s := range samples {
		if s.T < 2 || math.IsNaN(s.MeasV) {
			continue
		}
		rawErr += (s.MeasV - s.TrueV) * (s.MeasV - s.TrueV)
		filtErr += (s.FilteredV - s.TrueV) * (s.FilteredV - s.TrueV)
		n++
	}
	if n == 0 {
		t.Fatal("no usable samples")
	}
	if filtErr >= rawErr*0.5 {
		t.Fatalf("filter did not clean the trace: raw=%v filt=%v", rawErr/float64(n), filtErr/float64(n))
	}
}

func TestWindowTrace(t *testing.T) {
	res, err := WindowTrace(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("empty window trace")
	}
	if math.IsNaN(res.RealEnter) || math.IsNaN(res.RealExit) {
		t.Fatalf("real passing times missing: %+v", res)
	}
	for _, s := range res.Samples {
		// Aggressive window inside conservative window (absolute times).
		if s.AggrEnter < s.ConsEnter-1e-6 {
			t.Fatalf("t=%v: aggressive enter %v before conservative %v", s.T, s.AggrEnter, s.ConsEnter)
		}
		if !math.IsInf(s.ConsExit, 1) && s.AggrExit > s.ConsExit+1e-6 {
			t.Fatalf("t=%v: aggressive exit %v after conservative %v", s.T, s.AggrExit, s.ConsExit)
		}
	}
	// Before the real entry, the conservative window's earliest-entry bound
	// must not postdate the real entry (sound estimate), with a step of
	// tolerance.  (After the entry the relative bound clamps to "now".)
	for _, s := range res.Samples {
		if s.T >= res.RealEnter {
			break
		}
		if s.ConsEnter > res.RealEnter+0.1 {
			t.Fatalf("t=%v: conservative enter %v after real %v", s.T, s.ConsEnter, res.RealEnter)
		}
	}
	// The aggressive entry estimate should approach the real entry time.
	lastIdx := len(res.Samples) - 1
	if gap := math.Abs(res.Samples[lastIdx].AggrEnter - res.RealEnter); gap > 1.5 {
		t.Fatalf("aggressive entry estimate far from reality near crossing: gap=%v", gap)
	}
}

func TestFilterRMSE(t *testing.T) {
	res, err := FilterRMSE(20, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trajectories != 20 {
		t.Fatalf("trajectories = %d", res.Trajectories)
	}
	// The filter must cut both RMSEs substantially (the paper reports
	// −69% position, −76% velocity).
	if res.PosReductionPercent < 30 {
		t.Errorf("position RMSE reduction only %.1f%%", res.PosReductionPercent)
	}
	if res.VelReductionPercent < 30 {
		t.Errorf("velocity RMSE reduction only %.1f%%", res.VelReductionPercent)
	}
	if res.PosAfter >= res.PosBefore || res.VelAfter >= res.VelBefore {
		t.Errorf("RMSE not reduced: %+v", res)
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(testPlanners(), testN, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full, okF := byName["full"]
	basic, okB := byName["basic"]
	noAggr, okA := byName["no-aggressive"]
	if !okF || !okB || !okA {
		t.Fatalf("missing variants: %+v", rows)
	}
	if full.SafeRate != 1 || basic.SafeRate != 1 {
		t.Fatalf("safety regressed in ablation: full=%v basic=%v", full.SafeRate, basic.SafeRate)
	}
	// The full design must beat the basic design; dropping the aggressive
	// set must cost efficiency relative to full.
	if full.ReachTime >= basic.ReachTime {
		t.Errorf("full %v not faster than basic %v", full.ReachTime, basic.ReachTime)
	}
	if noAggr.ReachTime < full.ReachTime-0.05 {
		t.Errorf("removing the aggressive set should not speed things up: %v vs %v",
			noAggr.ReachTime, full.ReachTime)
	}
}

func TestStreamTable(t *testing.T) {
	rows, err := StreamTable(testPlanners(), 60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 4 stream sizes × 3 designs
		t.Fatalf("rows = %d", len(rows))
	}
	var pureSafe, ultReach []float64
	for _, r := range rows {
		switch r.PlannerType {
		case "pure NN":
			pureSafe = append(pureSafe, r.SafeRate)
			if r.SafeRate > 0.95 {
				t.Errorf("%d vehicles: pure aggressive suspiciously safe (%v)", r.Vehicles, r.SafeRate)
			}
		default:
			if r.SafeRate != 1 {
				t.Errorf("%d vehicles / %s: compound safe rate %v", r.Vehicles, r.PlannerType, r.SafeRate)
			}
			if r.PlannerType == "ultimate" {
				ultReach = append(ultReach, r.ReachTime)
			}
		}
	}
	// The pure planner commits at t=0 and only ever meets the first
	// vehicle, so its safe rate is (correctly) flat in the stream size.
	for i := 1; i < len(pureSafe); i++ {
		if pureSafe[i] > pureSafe[i-1]+0.08 {
			t.Errorf("pure safe rate rose with more vehicles: %v", pureSafe)
		}
	}
	// A yielding compound planner must wait for more of the stream:
	// reaching time grows with the vehicle count.
	if ultReach[len(ultReach)-1] <= ultReach[0] {
		t.Errorf("ultimate reach time should grow with stream size: %v", ultReach)
	}
}

func TestCarFollowTable(t *testing.T) {
	rows, err := CarFollowTable(60, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for s := 0; s < 3; s++ {
		pure, basic, ult := rows[3*s], rows[3*s+1], rows[3*s+2]
		if basic.SafeRate != 1 || ult.SafeRate != 1 {
			t.Errorf("%s: compound safe rates %v / %v", pure.Setting, basic.SafeRate, ult.SafeRate)
		}
		if ult.ReachTime > basic.ReachTime+1e-9 {
			t.Errorf("%s: ultimate %v slower than basic %v", pure.Setting, ult.ReachTime, basic.ReachTime)
		}
	}
	// The tailgater must be unsafe in at least the noisiest setting.
	if rows[6].SafeRate >= 1 {
		t.Errorf("pure tailgater safe under lost comms: %v", rows[6].SafeRate)
	}
}
