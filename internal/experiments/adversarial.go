package experiments

import (
	"fmt"
	"math"

	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/eval"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

// AdversarialSetting is one worst-case disturbance scenario: a channel
// model beyond the paper's three settings, optionally paired with an
// adversarial sensing model.  These stress the safety guarantee along
// axes the evaluation's i.i.d. drop + constant delay never exercises:
// loss bursts, latency jitter with reordering, stale replay, total
// blackout windows, and correlated sensor bias.
type AdversarialSetting struct {
	Name   string
	Model  disturb.Model       // channel disturbance (nil for sensing-only settings)
	Sensor disturb.SensorModel // sensing disturbance (nil for channel-only settings)
}

// AdversarialSettings returns the worst-case scenarios evaluated by
// WorstCaseTable, each built from the named presets in internal/disturb.
func AdversarialSettings() []AdversarialSetting {
	mustChan := func(name string) disturb.Model {
		m, err := disturb.Preset(name)
		if err != nil {
			panic(err) // presets are compile-time constants; covered by tests
		}
		return m
	}
	mustSens := func(name string) disturb.SensorModel {
		m, err := disturb.SensorPreset(name)
		if err != nil {
			panic(err)
		}
		return m
	}
	return []AdversarialSetting{
		{Name: "burst loss", Model: mustChan("burst")},
		{Name: "jitter+reorder", Model: mustChan("jitter")},
		{Name: "stale replay", Model: mustChan("replay")},
		{Name: "blackout", Model: mustChan("blackout")},
		{Name: "bias drift", Sensor: mustSens("bias")},
		{Name: "worst case", Model: mustChan("worst"), Sensor: mustSens("worst")},
	}
}

// adversarialSim builds the sim configuration for one adversarial setting.
// The sensor half-width uses the "messages lost" δ so sensing-only
// settings are meaningfully stressed.
func adversarialSim(s AdversarialSetting) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Sensor = sensor.Uniform(LostSensorDelta)
	if s.Model != nil {
		cfg.Comms = comms.Disturbed(s.Model)
	}
	cfg.SensorDisturb = s.Sensor
	return cfg
}

// WorstCaseTable is the adversarial companion of Table I/II: for every
// AdversarialSetting it runs the pure, basic, and ultimate designs over
// the same n seeds and aggregates the paper's statistics.  The safety
// guarantee predicts SafeRate = 1 for the basic and ultimate rows under
// every disturbance (the monitor only relies on the sound estimate, which
// all channel models preserve).
func WorstCaseTable(kind PlannerKind, pl Planners, n int, seed int64) ([]TableRow, error) {
	if n <= 0 {
		n = DefaultEpisodes
	}
	p := pl.Pick(kind)
	var rows []TableRow
	for _, s := range AdversarialSettings() {
		base := adversarialSim(s)
		stats := make([]eval.Stats, 3)
		ags := agents(base.Scenario, p, base)
		for i, ag := range ags {
			rs, err := sim.RunCampaign(ag.Cfg, ag.Agent, n, sim.CampaignOptions{BaseSeed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", s.Name, ag.Label, err)
			}
			stats[i] = eval.Aggregate(rs)
		}
		for i, ag := range ags {
			row := TableRow{
				Setting:       s.Name,
				PlannerType:   ag.Label,
				ReachTime:     stats[i].MeanReachTimeSafe,
				SafeRate:      stats[i].SafeRate(),
				Eta:           stats[i].MeanEta,
				Winning:       math.NaN(),
				EmergencyFreq: stats[i].EmergencyFreq,
			}
			if ag.Label != "ultimate" {
				w, err := eval.WinningPercentage(stats[2].Etas, stats[i].Etas)
				if err != nil {
					return nil, err
				}
				row.Winning = w
			}
			if ag.Label == "pure NN" {
				row.EmergencyFreq = math.NaN()
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// BurstLengths is the mean-burst-length sweep of SweepBurst: 1/PBadGood
// from 1 to 10 message periods.
func BurstLengths() []float64 {
	var xs []float64
	for j := 1; j <= 10; j++ {
		xs = append(xs, float64(j))
	}
	return xs
}

// SweepBurst extends the Fig. 5 family with a burst-loss axis: reaching
// time and emergency frequency versus the mean loss-burst length of a
// Gilbert–Elliott channel with 10% entry probability and total loss in
// the bad state.  At x = 1 the channel degenerates to near-i.i.d. loss;
// growing x holds the entry rate fixed while stretching each outage, so
// the stationary loss rate rises with the burst length.
func SweepBurst(pl Planners, n int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, x := range BurstLengths() {
		base := sim.DefaultConfig()
		base.Sensor = sensor.Uniform(LostSensorDelta)
		base.Comms = comms.Disturbed(disturb.GilbertElliott{
			PGoodBad: 0.1,
			PBadGood: 1 / x,
			DropBad:  1,
			Delay:    DelayedDelay,
		})
		pt, err := sweepAt(x, base, pl, Conservative, n, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
