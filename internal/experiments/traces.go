package experiments

import (
	"fmt"
	"math"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/dynamics"
	"safeplan/internal/eval"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

// FilterSample is one row of the Fig. 6a trace: the oncoming vehicle's true
// velocity, the raw sensor measurement, and the information-filter output.
type FilterSample struct {
	T         float64
	TrueV     float64
	MeasV     float64 // NaN before the first reading
	FilteredV float64
}

// FilterTraceDelta is the sensor uncertainty used for the Fig. 6a trace
// (large enough that the raw measurements visibly scatter, as in the
// paper's figure).
const FilterTraceDelta = 3.0

// observerConfig builds a sensors-only configuration whose ego never moves,
// so a full-horizon trace of the oncoming vehicle is recorded.
func observerConfig(delta float64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Lost()
	cfg.Sensor = sensor.Uniform(delta)
	cfg.InfoFilter = true
	return cfg
}

// observer is an agent that parks the ego vehicle; it exists so trace
// experiments observe the oncoming vehicle for the whole horizon.
func observer(sc leftturn.Config) core.Agent {
	return &core.PureNN{Cfg: sc, Planner: planner.Func{
		PlannerName: "observer",
		F: func(float64, dynamics.State, interval.Interval) float64 {
			return sc.Ego.AMin
		},
	}}
}

// FilterTrace regenerates Fig. 6a: one sensor-only episode's velocity
// series before and after the information filter.
func FilterTrace(seed int64) ([]FilterSample, error) {
	cfg := observerConfig(FilterTraceDelta)
	r, err := sim.Run(cfg, observer(cfg.Scenario), sim.Options{Seed: seed, Trace: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: filter trace: %w", err)
	}
	var out []FilterSample
	for _, s := range r.Trace {
		out = append(out, FilterSample{
			T:         s.T,
			TrueV:     s.OncV,
			MeasV:     s.MeasV,
			FilteredV: s.EstV,
		})
	}
	return out, nil
}

// WindowSample is one row of the Fig. 6b trace: the conservative (Eq. 7)
// and aggressive (Eq. 8) passing-window estimates in absolute time.
type WindowSample struct {
	T                   float64
	ConsEnter, ConsExit float64 // absolute times; +Inf possible for ConsExit
	AggrEnter, AggrExit float64
}

// WindowTraceResult bundles the Fig. 6b series with the realized passing
// interval of the oncoming vehicle.
type WindowTraceResult struct {
	Samples             []WindowSample
	RealEnter, RealExit float64 // NaN if the vehicle never entered/exited
}

// WindowTrace regenerates Fig. 6b: the evolution of the conservative and
// aggressive passing-window estimates over one episode, against the real
// passing times.  It uses the ultimate configuration (information filter
// on) under the delayed setting so both estimates are live.
func WindowTrace(seed int64) (WindowTraceResult, error) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(DelayedDelay, DelayedDropProb)
	cfg.Sensor = sensor.Uniform(1)
	cfg.InfoFilter = true
	r, err := sim.Run(cfg, observer(cfg.Scenario), sim.Options{Seed: seed, Trace: true})
	if err != nil {
		return WindowTraceResult{}, fmt.Errorf("experiments: window trace: %w", err)
	}
	res := WindowTraceResult{RealEnter: math.NaN(), RealExit: math.NaN()}
	sc := cfg.Scenario
	for _, s := range r.Trace {
		if math.IsNaN(res.RealEnter) && s.OncP >= sc.Geometry.PF {
			res.RealEnter = s.T
		}
		if math.IsNaN(res.RealExit) && s.OncP > sc.Geometry.PB {
			res.RealExit = s.T
		}
		if s.OncP > sc.Geometry.PB {
			break // window estimates past the crossing are uninteresting
		}
		res.Samples = append(res.Samples, WindowSample{
			T:         s.T,
			ConsEnter: s.T + s.ConsLo,
			ConsExit:  s.T + s.ConsHi,
			AggrEnter: s.T + s.AggrLo,
			AggrExit:  s.T + s.AggrHi,
		})
	}
	return res, nil
}

// RMSEResult is the §V-C information-filter study: position and velocity
// RMSE of the raw measurements versus the filtered estimates, pooled over
// sampled oncoming trajectories.
type RMSEResult struct {
	Trajectories int

	PosBefore, PosAfter float64
	VelBefore, VelAfter float64

	PosReductionPercent float64
	VelReductionPercent float64
}

// FilterRMSE regenerates the paper's RMSE numbers (position −69%,
// velocity −76% after the filter) over n sampled trajectories in the
// sensors-only setting with δ = 2.
func FilterRMSE(n int, seed int64) (RMSEResult, error) {
	if n <= 0 {
		n = 200
	}
	cfg := observerConfig(2)
	var measP, measV, filtP, filtV, trueP, trueV []float64
	for i := 0; i < n; i++ {
		r, err := sim.Run(cfg, observer(cfg.Scenario), sim.Options{Seed: seed + int64(i), Trace: true})
		if err != nil {
			return RMSEResult{}, fmt.Errorf("experiments: rmse episode %d: %w", i, err)
		}
		for _, s := range r.Trace {
			if s.T < 1 {
				continue // skip the exactly-known initial transient
			}
			measP = append(measP, s.MeasP)
			measV = append(measV, s.MeasV)
			filtP = append(filtP, s.EstP)
			filtV = append(filtV, s.EstV)
			trueP = append(trueP, s.OncP)
			trueV = append(trueV, s.OncV)
		}
	}
	res := RMSEResult{Trajectories: n}
	var err error
	if res.PosBefore, err = eval.RMSE(measP, trueP); err != nil {
		return res, err
	}
	if res.PosAfter, err = eval.RMSE(filtP, trueP); err != nil {
		return res, err
	}
	if res.VelBefore, err = eval.RMSE(measV, trueV); err != nil {
		return res, err
	}
	if res.VelAfter, err = eval.RMSE(filtV, trueV); err != nil {
		return res, err
	}
	res.PosReductionPercent = eval.ReductionPercent(res.PosBefore, res.PosAfter)
	res.VelReductionPercent = eval.ReductionPercent(res.VelBefore, res.VelAfter)
	return res, nil
}
