package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"safeplan/internal/dynamics"
)

var lim = dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}

func defaultCfg() Config {
	return Config{DeltaP: 1, DeltaV: 1, DeltaA: 1}
}

// simulateNoisy drives a ground-truth vehicle and feeds noisy measurements
// to the filter, returning final truth and a per-step callback hook.
func simulateNoisy(t *testing.T, f *Filter, steps int, dt float64, seed int64,
	each func(step int, truth dynamics.State)) dynamics.State {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := dynamics.State{P: 0, V: 8}
	var a float64
	for i := 1; i <= steps; i++ {
		a = -1 + rng.Float64()*2
		var applied float64
		s, applied = dynamics.Step(s, a, dt, lim)
		zp := s.P + (rng.Float64()*2-1)*f.cfg.DeltaP
		zv := s.V + (rng.Float64()*2-1)*f.cfg.DeltaV
		za := applied + (rng.Float64()*2-1)*f.cfg.DeltaA
		if err := f.Update(float64(i)*dt, zp, zv, za); err != nil {
			t.Fatalf("Update: %v", err)
		}
		if each != nil {
			each(i, s)
		}
	}
	return s
}

func TestUninitializedInterval(t *testing.T) {
	f := New(defaultCfg())
	if f.Initialized() {
		t.Fatal("fresh filter claims initialized")
	}
	p, v := f.IntervalAt(0, 3)
	if !p.Contains(1e12) || !v.Contains(-1e12) {
		t.Fatal("uninitialized filter must return the entire line")
	}
}

func TestInitExact(t *testing.T) {
	f := New(defaultCfg())
	f.InitExact(1, 10, 5, 0.5)
	if !f.Initialized() || f.Time() != 1 {
		t.Fatal("InitExact bookkeeping wrong")
	}
	x, p := f.Estimate()
	if x.X != 10 || x.Y != 5 {
		t.Fatalf("Estimate = %v", x)
	}
	if p.A > 1e-9 || p.D > 1e-9 {
		t.Fatalf("exact init covariance too large: %v", p)
	}
}

func TestFirstUpdateAdoptsMeasurement(t *testing.T) {
	f := New(defaultCfg())
	if err := f.Update(0.1, 3, 4, 0); err != nil {
		t.Fatal(err)
	}
	x, p := f.Estimate()
	if x.X != 3 || x.Y != 4 {
		t.Fatalf("first estimate = %v", x)
	}
	if p.A != 1.0/3 || p.D != 1.0/3 {
		t.Fatalf("first covariance should equal R, got %v", p)
	}
}

func TestOutOfOrderMeasurementRejected(t *testing.T) {
	f := New(defaultCfg())
	if err := f.Update(1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(0.5, 0, 0, 0); err == nil {
		t.Fatal("out-of-order measurement accepted")
	}
}

func TestFilterReducesNoise(t *testing.T) {
	// The filtered estimate should track ground truth better than the raw
	// measurements do — the paper's §V-C claim (RMSE reduction).
	cfg := Config{DeltaP: 2, DeltaV: 2, DeltaA: 2}
	f := New(cfg)
	f.InitExact(0, 0, 8, 0)
	rng := rand.New(rand.NewSource(7))
	s := dynamics.State{P: 0, V: 8}
	var rawSq, filtSq float64
	n := 0
	const dt = 0.1
	for i := 1; i <= 300; i++ {
		a := -1 + rng.Float64()*2
		var applied float64
		s, applied = dynamics.Step(s, a, dt, lim)
		zp := s.P + (rng.Float64()*2-1)*cfg.DeltaP
		zv := s.V + (rng.Float64()*2-1)*cfg.DeltaV
		za := applied + (rng.Float64()*2-1)*cfg.DeltaA
		if err := f.Update(float64(i)*dt, zp, zv, za); err != nil {
			t.Fatal(err)
		}
		if i > 20 { // skip transient
			x, _ := f.Estimate()
			rawSq += (zv - s.V) * (zv - s.V)
			filtSq += (x.Y - s.V) * (x.Y - s.V)
			n++
		}
	}
	rawRMSE := math.Sqrt(rawSq / float64(n))
	filtRMSE := math.Sqrt(filtSq / float64(n))
	if filtRMSE >= rawRMSE*0.6 {
		t.Fatalf("filter should cut velocity RMSE substantially: raw=%.3f filt=%.3f", rawRMSE, filtRMSE)
	}
}

func TestCovarianceStaysPSD(t *testing.T) {
	f := New(defaultCfg())
	simulateNoisy(t, f, 500, 0.1, 3, func(i int, _ dynamics.State) {
		_, p := f.Estimate()
		if !p.IsSymmetric(1e-9) {
			t.Fatalf("step %d: covariance asymmetric: %v", i, p)
		}
		if !p.IsPSD(1e-9) {
			t.Fatalf("step %d: covariance not PSD: %v", i, p)
		}
	})
}

func TestEstimateAtExtrapolates(t *testing.T) {
	f := New(defaultCfg())
	f.InitExact(0, 0, 10, 0)
	x, p := f.EstimateAt(1)
	if math.Abs(x.X-10) > 1e-9 || math.Abs(x.Y-10) > 1e-9 {
		t.Fatalf("extrapolated state = %v", x)
	}
	if p.A <= 0 {
		t.Fatal("extrapolated covariance must grow")
	}
	// t before the estimate returns the estimate unchanged.
	x2, _ := f.EstimateAt(-5)
	if x2.X != 0 || x2.Y != 10 {
		t.Fatalf("past-time estimate = %v", x2)
	}
}

func TestIntervalAtWidthGrowsWithK(t *testing.T) {
	f := New(defaultCfg())
	simulateNoisy(t, f, 50, 0.1, 9, nil)
	p1, v1 := f.IntervalAt(f.Time(), 1)
	p3, v3 := f.IntervalAt(f.Time(), 3)
	if p3.Width() <= p1.Width() || v3.Width() <= v1.Width() {
		t.Fatal("3-sigma interval should be wider than 1-sigma")
	}
}

func TestApplyMessageSharpensEstimate(t *testing.T) {
	cfg := Config{DeltaP: 3, DeltaV: 3, DeltaA: 3}
	const dt = 0.1
	rng := rand.New(rand.NewSource(21))
	truth := dynamics.State{P: 0, V: 8}
	type snap struct {
		t float64
		s dynamics.State
		a float64
	}
	var snaps []snap
	f := New(cfg)
	f.InitExact(0, truth.P, truth.V, 0)
	for i := 1; i <= 40; i++ {
		a := -1 + rng.Float64()*2
		var applied float64
		truth, applied = dynamics.Step(truth, a, dt, lim)
		snaps = append(snaps, snap{t: float64(i) * dt, s: truth, a: applied})
		zp := truth.P + (rng.Float64()*2-1)*cfg.DeltaP
		zv := truth.V + (rng.Float64()*2-1)*cfg.DeltaV
		za := applied + (rng.Float64()*2-1)*cfg.DeltaA
		if err := f.Update(float64(i)*dt, zp, zv, za); err != nil {
			t.Fatal(err)
		}
	}
	xBefore, pBefore := f.Estimate()
	errBefore := math.Abs(xBefore.X - truth.P)

	// A delayed message reporting the exact state 0.5 s ago arrives.
	m := snaps[len(snaps)-6]
	f.ApplyMessage(m.t, m.s.P, m.s.V, m.a)
	xAfter, pAfter := f.Estimate()
	errAfter := math.Abs(xAfter.X - truth.P)

	if f.Time() != snaps[len(snaps)-1].t {
		t.Fatalf("replay should end at the last measurement time, got %v", f.Time())
	}
	if pAfter.A >= pBefore.A {
		t.Fatalf("message should shrink position variance: before=%v after=%v", pBefore.A, pAfter.A)
	}
	if errAfter > errBefore+1e-9 && errAfter > 0.5 {
		t.Fatalf("message should not worsen the estimate much: before=%.4f after=%.4f", errBefore, errAfter)
	}
}

func TestApplyMessageNewerThanAllMeasurements(t *testing.T) {
	f := New(defaultCfg())
	f.InitExact(0, 0, 5, 0)
	f.ApplyMessage(2, 11, 6, 0.5)
	if f.Time() != 2 {
		t.Fatalf("Time = %v, want 2", f.Time())
	}
	x, _ := f.Estimate()
	if x.X != 11 || x.Y != 6 {
		t.Fatalf("Estimate = %v", x)
	}
}

func TestApplyMessageOnUninitializedFilter(t *testing.T) {
	f := New(defaultCfg())
	f.ApplyMessage(1, 4, 3, 0)
	if !f.Initialized() {
		t.Fatal("message should initialize the filter")
	}
	pos, vel := f.IntervalAt(1, 3)
	if !pos.Contains(4) || !vel.Contains(3) {
		t.Fatal("interval should cover the message state")
	}
}

func TestHistoryBounded(t *testing.T) {
	f := New(Config{DeltaP: 1, DeltaV: 1, DeltaA: 1, HistoryLen: 16})
	for i := 1; i <= 200; i++ {
		if err := f.Update(float64(i)*0.1, float64(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.hist) > 16 {
		t.Fatalf("history grew to %d > 16", len(f.hist))
	}
}

func TestReset(t *testing.T) {
	f := New(defaultCfg())
	f.InitExact(0, 1, 2, 3)
	if err := f.Update(1, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	f.Reset()
	if f.Initialized() || len(f.hist) != 0 || f.Time() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: for randomized trajectories the 4-sigma interval contains the
// true state the vast majority of steps (the filter is consistent).
func TestQuickIntervalCoverage(t *testing.T) {
	const dt = 0.1
	f4 := func(seed int64) bool {
		cfg := Config{DeltaP: 2, DeltaV: 2, DeltaA: 2}
		f := New(cfg)
		f.InitExact(0, 0, 8, 0)
		rng := rand.New(rand.NewSource(seed))
		s := dynamics.State{P: 0, V: 8}
		misses := 0
		const steps = 150
		for i := 1; i <= steps; i++ {
			a := -1 + rng.Float64()*2
			var applied float64
			s, applied = dynamics.Step(s, a, dt, lim)
			zp := s.P + (rng.Float64()*2-1)*cfg.DeltaP
			zv := s.V + (rng.Float64()*2-1)*cfg.DeltaV
			za := applied + (rng.Float64()*2-1)*cfg.DeltaA
			if err := f.Update(float64(i)*dt, zp, zv, za); err != nil {
				return false
			}
			pos, vel := f.IntervalAt(f.Time(), 4)
			if !pos.Contains(s.P) || !vel.Contains(s.V) {
				misses++
			}
		}
		return misses <= steps/20 // ≤5% misses at 4σ is generous
	}
	if err := quick.Check(f4, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: covariance trace stays bounded over long runs (the filter does
// not diverge).
func TestQuickCovarianceBounded(t *testing.T) {
	f := func(seed int64) bool {
		flt := New(Config{DeltaP: 1.5, DeltaV: 1.5, DeltaA: 1.5})
		rng := rand.New(rand.NewSource(seed))
		s := dynamics.State{P: 0, V: 8}
		const dt = 0.1
		for i := 1; i <= 400; i++ {
			a := -1 + rng.Float64()*2
			var applied float64
			s, applied = dynamics.Step(s, a, dt, lim)
			if err := flt.Update(float64(i)*dt,
				s.P+(rng.Float64()*2-1)*1.5,
				s.V+(rng.Float64()*2-1)*1.5,
				applied+(rng.Float64()*2-1)*1.5); err != nil {
				return false
			}
		}
		_, p := flt.Estimate()
		return p.Trace() < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
