// Package kalman implements the Kalman filter of paper §III-B (Fig. 3) for
// the (position, velocity) state of another vehicle observed through noisy
// onboard sensors, including the paper's extension that incorporates V2V
// messages: when a (delayed) message reporting the exact state at time t_k
// arrives, the filter rolls back to t_k and replays the sensor measurements
// received since, so the message sharpens the *current* estimate.
//
// Model (paper notation, Δt = sensing period):
//
//	x(t+Δt) = F·x(t) + G·a(t)        F = [1 Δt; 0 1], G = [½Δt²; Δt]
//	Q = [¼Δt⁴ ½Δt³; ½Δt³ Δt²]·δa²/3  (process noise from accel uncertainty)
//	R = diag(δp²/3, δv²/3)           (uniform sensor noise variance)
//
// and the Joseph-form covariance update keeps P symmetric PSD.
package kalman

import (
	"fmt"
	"math"

	"safeplan/internal/interval"
	"safeplan/internal/mat"
)

// Config parameterizes the filter.
type Config struct {
	// DeltaP, DeltaV, DeltaA are the half-widths of the uniform sensor
	// noise for position, velocity, and acceleration (paper δ_p, δ_v, δ_a).
	DeltaP, DeltaV, DeltaA float64
	// HistoryLen bounds how many past measurements are retained for message
	// rollback/replay.  Zero selects DefaultHistoryLen.
	HistoryLen int
}

// DefaultHistoryLen retains ~25 s of measurements at a 0.1 s sensing period.
const DefaultHistoryLen = 256

// record is one sensing event retained for replay.
type record struct {
	t float64  // measurement timestamp
	z mat.Vec2 // measured (position, velocity)
	a float64  // measured acceleration (control input for the next predict)
}

// Filter is a 2-state Kalman filter with measurement history.
// It is not safe for concurrent use.
type Filter struct {
	cfg         Config
	r           mat.Mat2 // measurement noise covariance
	initialized bool

	tf    float64  // time of the latest filtered estimate
	xf    mat.Vec2 // x̂(tf | tf): filtered state
	pf    mat.Mat2 // P(tf | tf): filtered covariance
	lastA float64  // latest acceleration estimate (control input)

	hist []record // measurement history, oldest first
}

// New returns a Filter for the given sensor uncertainties.
func New(cfg Config) *Filter {
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = DefaultHistoryLen
	}
	return &Filter{
		cfg: cfg,
		r:   mat.Diag2(cfg.DeltaP*cfg.DeltaP/3, cfg.DeltaV*cfg.DeltaV/3),
		// push appends one record before compacting, so HistoryLen+1
		// capacity means the history never reallocates.
		hist: make([]record, 0, cfg.HistoryLen+1),
	}
}

// Initialized reports whether the filter has processed any information.
func (f *Filter) Initialized() bool { return f.initialized }

// Time returns the timestamp of the current filtered estimate.
func (f *Filter) Time() float64 { return f.tf }

// stateTransition returns F(dt) and G(dt).
func stateTransition(dt float64) (mat.Mat2, mat.Vec2) {
	return mat.Mat2{A: 1, B: dt, C: 0, D: 1}, mat.Vec2{X: 0.5 * dt * dt, Y: dt}
}

// processNoise returns Q(dt) for acceleration uncertainty δa (uniform, so
// variance δa²/3).
func (f *Filter) processNoise(dt float64) mat.Mat2 {
	va := f.cfg.DeltaA * f.cfg.DeltaA / 3
	dt2 := dt * dt
	return mat.Mat2{
		A: 0.25 * dt2 * dt2 * va,
		B: 0.5 * dt2 * dt * va,
		C: 0.5 * dt2 * dt * va,
		D: dt2 * va,
	}
}

// ResetConfig reconfigures the filter in place and clears all state,
// reusing the history backing array when it is large enough.  Equivalent to
// replacing the filter with New(cfg).
func (f *Filter) ResetConfig(cfg Config) {
	if cfg.HistoryLen <= 0 {
		cfg.HistoryLen = DefaultHistoryLen
	}
	f.cfg = cfg
	f.r = mat.Diag2(cfg.DeltaP*cfg.DeltaP/3, cfg.DeltaV*cfg.DeltaV/3)
	if cap(f.hist) < cfg.HistoryLen+1 {
		f.hist = make([]record, 0, cfg.HistoryLen+1)
	}
	f.Reset()
}

// Reset clears all state, returning the filter to the uninitialized state.
func (f *Filter) Reset() {
	f.initialized = false
	f.tf = 0
	f.xf = mat.Vec2{}
	f.pf = mat.Mat2{}
	f.lastA = 0
	f.hist = f.hist[:0]
}

// InitExact seeds the filter with an exactly known state (e.g. the initial
// broadcast at t = 0), with near-zero covariance.
func (f *Filter) InitExact(t float64, p, v, a float64) {
	f.initialized = true
	f.tf = t
	f.xf = mat.Vec2{X: p, Y: v}
	f.pf = mat.Diag2(1e-12, 1e-12)
	f.lastA = a
	f.hist = f.hist[:0]
}

// Update ingests a sensor measurement (measured position zp, velocity zv,
// acceleration za) taken at time t > Time().  It predicts the state forward
// from the previous estimate and applies the standard Kalman update.  The
// measurement is retained for message replay.
func (f *Filter) Update(t float64, zp, zv, za float64) error {
	z := mat.Vec2{X: zp, Y: zv}
	if !f.initialized {
		// First information: adopt the measurement with sensor covariance.
		f.initialized = true
		f.tf = t
		f.xf = z
		f.pf = f.r
		f.lastA = za
		f.push(record{t: t, z: z, a: za})
		return nil
	}
	if t < f.tf {
		return fmt.Errorf("kalman: out-of-order measurement t=%v < %v", t, f.tf)
	}
	f.step(t, z, za)
	f.push(record{t: t, z: z, a: za})
	return nil
}

// step predicts from f.tf to t using lastA and updates with measurement z.
func (f *Filter) step(t float64, z mat.Vec2, za float64) {
	dt := t - f.tf
	fm, g := stateTransition(dt)
	xp := fm.MulVec(f.xf).Add(g.Scale(f.lastA))
	pp := fm.Mul(f.pf).Mul(fm.Transpose()).Add(f.processNoise(dt))

	// Kalman gain K = P (P + R)⁻¹  (H = I).
	s := pp.Add(f.r)
	sInv, ok := s.Inverse()
	if !ok {
		// Both prior and measurement claim certainty; keep the prediction.
		f.tf = t
		f.xf = xp
		f.pf = pp
		f.lastA = za
		return
	}
	k := pp.Mul(sInv)
	innov := z.Sub(xp)
	f.xf = xp.Add(k.MulVec(innov))
	// Joseph form: (I−K) P (I−K)ᵀ + K R Kᵀ — numerically PSD-preserving.
	ik := mat.Identity2().Sub(k)
	f.pf = ik.Mul(pp).Mul(ik.Transpose()).Add(k.Mul(f.r).Mul(k.Transpose()))
	f.tf = t
	f.lastA = za
}

// ApplyMessage incorporates a V2V message that reports the *exact* state
// (p, v, a) of the vehicle at time tk (paper §II-A: message content is
// accurate, only delayed).  The filter rolls its estimate back to tk and
// replays every retained measurement newer than tk, which propagates the
// exact information to the present.
func (f *Filter) ApplyMessage(tk float64, p, v, a float64) {
	f.initialized = true
	f.tf = tk
	f.xf = mat.Vec2{X: p, Y: v}
	f.pf = mat.Diag2(1e-12, 1e-12)
	f.lastA = a
	// Replay retained measurements newer than tk directly from the
	// history: step never mutates hist, so no scratch copy is needed.
	for _, rec := range f.hist {
		if rec.t > tk {
			f.step(rec.t, rec.z, rec.a)
		}
	}
	// History keeps all records (they may be replayed again by an even
	// older message only if it arrives out of order, which we ignore:
	// replaying from an older tk would discard the newer exact info).
}

func (f *Filter) push(rec record) {
	f.hist = append(f.hist, rec)
	if len(f.hist) > f.cfg.HistoryLen {
		// Drop the oldest half to amortize the copy.
		n := len(f.hist) - f.cfg.HistoryLen/2
		f.hist = append(f.hist[:0], f.hist[n:]...)
	}
}

// Estimate returns the current filtered state and covariance at Time().
func (f *Filter) Estimate() (mat.Vec2, mat.Mat2) { return f.xf, f.pf }

// EstimateAt extrapolates the filtered estimate to time t ≥ Time() using
// the latest acceleration as control input; the covariance grows by the
// process noise.  For t ≤ Time() the current estimate is returned.
func (f *Filter) EstimateAt(t float64) (mat.Vec2, mat.Mat2) {
	dt := t - f.tf
	if dt <= 0 {
		return f.xf, f.pf
	}
	fm, g := stateTransition(dt)
	x := fm.MulVec(f.xf).Add(g.Scale(f.lastA))
	p := fm.Mul(f.pf).Mul(fm.Transpose()).Add(f.processNoise(dt))
	return x, p
}

// IntervalAt returns k-sigma confidence intervals for position and velocity
// at time t (extrapolated if t is past the last update).  This is the
// Kalman-side input to the information filter's interval join (paper
// §III-B).  k = 3 covers ≳99.7% under Gaussian assumptions.
func (f *Filter) IntervalAt(t, k float64) (pos, vel interval.Interval) {
	if !f.initialized {
		return interval.Entire(), interval.Entire()
	}
	x, p := f.EstimateAt(t)
	sp := k * math.Sqrt(math.Max(p.A, 0))
	sv := k * math.Sqrt(math.Max(p.D, 0))
	return interval.New(x.X-sp, x.X+sp), interval.New(x.Y-sv, x.Y+sv)
}
