package safeplan

import (
	"math"
	"testing"
)

func TestDefaultsValid(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if err := Validate(DefaultSimConfig()); err != nil {
		t.Fatalf("sim config: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.DtM = -1
	if Validate(cfg) == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	sc := DefaultScenario()
	kn := NewConservativeExpert(sc)
	agent := BuildUltimate(sc, kn)
	cfg := DefaultSimConfig()
	cfg.InfoFilter = true
	r, err := RunEpisode(cfg, agent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reached || r.Collided {
		t.Fatalf("quickstart episode failed: %+v", r)
	}
}

func TestPureVsCompoundSafety(t *testing.T) {
	sc := DefaultScenario()
	kn := NewAggressiveExpert(sc)
	cfg := DefaultSimConfig()

	pure, err := RunCampaign(cfg, BuildPure(sc, kn), 80, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ult := cfg
	ult.InfoFilter = true
	comp, err := RunCampaign(ult, BuildUltimate(sc, kn), 80, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pure.SafeRate() >= 1 {
		t.Fatal("aggressive pure planner unexpectedly 100% safe")
	}
	if comp.SafeRate() != 1 {
		t.Fatalf("compound planner not 100%% safe: %v", comp.SafeRate())
	}
	// Headline inequality (paper Eq. 1): η(κ_c) ≥ η(κ_n) on average.
	if comp.MeanEta < pure.MeanEta {
		t.Fatalf("compound η %v below pure %v", comp.MeanEta, pure.MeanEta)
	}
}

func TestRunEpisodeWithTrace(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	r, err := RunEpisode(cfg, BuildPure(sc, NewConservativeExpert(sc)), 2, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestCustomPlannerFunc(t *testing.T) {
	sc := DefaultScenario()
	// A trivially bad custom planner: always full throttle.  Wrapped in the
	// compound planner it must still be safe.
	reckless := PlannerFunc{PlannerName: "full-throttle", F: func(_ float64, _ VehicleState, _ Interval) float64 {
		return sc.Ego.AMax
	}}
	cfg := DefaultSimConfig()
	stats, err := RunCampaign(cfg, BuildBasic(sc, reckless), 60, 500)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SafeRate() != 1 {
		t.Fatalf("compound-wrapped reckless planner unsafe: %v", stats.SafeRate())
	}
}

func TestTrainAndUsePlanner(t *testing.T) {
	sc := DefaultScenario()
	nnp, loss, err := TrainPlanner(sc, NewConservativeExpert(sc), "nn", TrainOptions{
		Samples: 3000, Epochs: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) {
		t.Fatal("NaN training loss")
	}
	cfg := DefaultSimConfig()
	r, err := RunEpisode(cfg, BuildBasic(sc, nnp), 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("compound-wrapped NN planner collided")
	}
}

func TestWinningPercentageExported(t *testing.T) {
	w, err := WinningPercentage([]float64{1, 0}, []float64{0, 1})
	if err != nil || w != 0.5 {
		t.Fatalf("WinningPercentage = %v, %v", w, err)
	}
}

func TestReproduceTablesSmoke(t *testing.T) {
	pl := NewExpertExperimentPlanners(DefaultScenario())
	t1, err := ReproduceTable1(pl, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != 9 {
		t.Fatalf("table 1 rows = %d", len(t1))
	}
	t2, err := ReproduceTable2(pl, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 9 {
		t.Fatalf("table 2 rows = %d", len(t2))
	}
}

func TestMultiVehicleFacade(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultMultiSimConfig()
	cfg.Vehicles = 2
	cfg.Comms = DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true
	agent := BuildMultiUltimate(sc, NewAggressiveExpert(sc))
	r, err := RunMultiEpisode(cfg, agent, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("multi-vehicle compound planner collided")
	}
	st, err := RunMultiCampaign(cfg, agent, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeRate() != 1 {
		t.Fatalf("multi campaign safe rate %v", st.SafeRate())
	}
	// The pure multi baseline must be less safe.
	ps, err := RunMultiCampaign(cfg, BuildMultiPure(sc, NewAggressiveExpert(sc)), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ps.SafeRate() >= 1 {
		t.Fatal("pure multi baseline suspiciously safe")
	}
	if got := BuildMultiBasic(sc, NewConservativeExpert(sc)).Name(); got == "" {
		t.Fatal("empty agent name")
	}
}

func TestFailureInjectionFacade(t *testing.T) {
	sc := DefaultScenario()
	cfg := DefaultSimConfig()
	cfg.Comms = CommsConfig{Delay: 0.25, DropProb: 0.5, OutageStart: 1, OutageDuration: 2}
	cfg.SensorDropProb = 0.3
	cfg.InfoFilter = true
	st, err := RunCampaign(cfg, BuildUltimate(sc, NewAggressiveExpert(sc)), 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeRate() != 1 {
		t.Fatalf("safe rate under failure injection: %v", st.SafeRate())
	}
}
