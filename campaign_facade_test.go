package safeplan_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"safeplan"
)

// TestRunShardedCampaignFacade exercises the public campaign entry point
// end to end: deterministic stats across worker counts, the standard
// invariant set in fail mode, and checkpoint/resume through the facade.
func TestRunShardedCampaignFacade(t *testing.T) {
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true
	sc := cfg.Scenario
	agent := safeplan.BuildUltimate(sc, safeplan.NewAggressiveExpert(sc))

	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	run := func(workers int, path string) *safeplan.CampaignReport {
		rep, err := safeplan.RunShardedCampaign(safeplan.CampaignSpec{
			Name:           "facade",
			Episodes:       600,
			BaseSeed:       1,
			Workers:        workers,
			Invariants:     safeplan.StandardInvariants(sc),
			CheckpointPath: path,
		}, safeplan.LeftTurnCampaign(cfg, agent))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	a := run(1, "")
	b := run(4, ckpt)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("stats differ across worker counts:\n1: %+v\n4: %+v", a.Stats, b.Stats)
	}
	if a.Stats.Collided != 0 {
		t.Fatalf("guaranteed design collided %d times", a.Stats.Collided)
	}
	if a.Stats.EmergencyEpisodes == 0 {
		t.Fatal("fixture never exercised the emergency planner; invariants ran vacuously")
	}

	// Resume from the complete checkpoint: identical stats, zero re-runs.
	c := run(4, ckpt)
	if !reflect.DeepEqual(b.Stats, c.Stats) {
		t.Fatal("resumed stats differ from the original run")
	}
	if c.Perf.ResumedShards != c.Perf.Shards {
		t.Fatalf("resumed %d of %d shards", c.Perf.ResumedShards, c.Perf.Shards)
	}
}

// TestRunBatchedCampaignFacade exercises the lockstep batch entry point
// through the facade: a multi-worker batched campaign must reproduce the
// scalar engine's Stats bit for bit, with the standard invariant set in
// fail mode along the way.
func TestRunBatchedCampaignFacade(t *testing.T) {
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true
	sc := cfg.Scenario
	agent := safeplan.BuildUltimate(sc, safeplan.NewAggressiveExpert(sc))

	spec := safeplan.CampaignSpec{
		Name:       "facade-batch",
		Episodes:   600,
		BaseSeed:   1,
		Workers:    1,
		Invariants: safeplan.StandardInvariants(sc),
	}
	scalar, err := safeplan.RunShardedCampaign(spec, safeplan.LeftTurnCampaign(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}

	spec.Workers = 4
	spec.BatchSize = 8
	batched, err := safeplan.RunBatchedCampaign(spec, safeplan.LeftTurnBatchCampaign(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar.Stats, batched.Stats) {
		t.Fatalf("batched stats diverge from scalar:\nscalar:  %+v\nbatched: %+v",
			scalar.Stats, batched.Stats)
	}
	if batched.Stats.EmergencyEpisodes == 0 {
		t.Fatal("fixture never exercised the emergency planner; parity ran vacuously")
	}
}
