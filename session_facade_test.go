package safeplan

import (
	"encoding/json"
	"net"
	"testing"
)

// TestStepperFacadeParity pins that the facade's stepper constructors
// reproduce the corresponding Run* entry points exactly, including the
// functional options (trace recording flows through).
func TestStepperFacadeParity(t *testing.T) {
	sc := DefaultScenario()
	kn := NewConservativeExpert(sc)
	agent := BuildUltimate(sc, kn)
	cfg := DefaultSimConfig()
	cfg.InfoFilter = true

	want, err := RunEpisode(cfg, agent, 5, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(cfg, agent, 5, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	for !st.Done() {
		if _, err := st.Step(StepInput{}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("facade stepper diverged from RunEpisode\nrun:     %s\nstepper: %s", wb, gb)
	}
	if len(got.Trace) == 0 {
		t.Fatal("WithTrace did not flow through the stepper constructor")
	}

	cf := DefaultCarFollowSimConfig()
	cfAgent := BuildCarFollowUltimate(cf.Scenario, NewCarFollowConservativeExpert(cf.Scenario))
	cfWant, err := RunCarFollowEpisode(cf, cfAgent, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfSt, err := NewCarFollowStepper(cf, cfAgent, 3)
	if err != nil {
		t.Fatal(err)
	}
	for !cfSt.Done() {
		if _, err := cfSt.Step(StepInput{}); err != nil {
			t.Fatal(err)
		}
	}
	cfGot, err := cfSt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	wb, _ = json.Marshal(cfWant)
	gb, _ = json.Marshal(cfGot)
	if string(wb) != string(gb) {
		t.Fatalf("facade car-follow stepper diverged from RunCarFollowEpisode\nrun:     %s\nstepper: %s", wb, gb)
	}
}

// TestServerFacade smoke-tests the serve vocabulary end to end through
// the public names only: NewServer, one session's open → step → close.
func TestServerFacade(t *testing.T) {
	srv, err := NewServer(ServeConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
	do := func(req SessionRequest) SessionResponse {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		var resp SessionResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := do(SessionRequest{Op: "open", SID: "f", Seed: 2}); !resp.OK {
		t.Fatalf("open: %+v", resp)
	}
	var result *SessionResult
	for i := 0; i < 1000; i++ {
		resp := do(SessionRequest{Op: "step", SID: "f", Steps: 50})
		if !resp.OK {
			t.Fatalf("step: %+v", resp)
		}
		if resp.Done {
			result = resp.Result
			break
		}
	}
	if result == nil || !result.Reached || result.Collided {
		t.Fatalf("facade session episode: %+v", result)
	}
	if resp := do(SessionRequest{Op: "close", SID: "f"}); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	var st ServerStats = srv.Stats()
	if st.EpisodesFinished != 1 || st.LiveSessions != 0 {
		t.Fatalf("facade stats: %+v", st)
	}
}
