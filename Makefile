GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md).
test: build
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector (includes the
# concurrent-campaign telemetry tests).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
