GO ?= go

.PHONY: build test check bench golden fuzz-smoke lint-extra

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md).
test: build
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector (includes the
# concurrent-campaign telemetry tests), then the golden-trace regression
# and a short fuzzing smoke pass over the safety invariants.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run TestGolden ./internal/sim
	$(MAKE) fuzz-smoke

# Re-bless the golden traces after an intentional behaviour change.
golden:
	$(GO) test -run TestGolden ./internal/sim -update

# Short fuzzing pass: ~20s per safety target.  The full corpus grows under
# `go test -fuzz <Target> <pkg>` without a -fuzztime bound.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCompoundSafety -fuzztime 20s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzCarFollowSafety -fuzztime 20s ./internal/carfollow

# Optional linters: run them when the tools are installed, skip quietly
# when they are not (the container does not ship them).
lint-extra:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping"

bench:
	$(GO) test -bench=. -benchmem ./...
