GO ?= go

.PHONY: build test check bench bench-batch bench-campaign bench-seed bench-guard bench-perf bench-ibp bench-platoon campaign-smoke guard-smoke platoon-smoke alloc-gate serve-smoke dist-smoke ibp-gate golden fuzz-smoke lint-extra

build:
	$(GO) build ./...

# Tier-1 verification (see ROADMAP.md).
test: build
	$(GO) test ./...

# Full gate: vet + the whole suite under the race detector (includes the
# concurrent-campaign telemetry tests), then the golden-trace regression,
# the guarded-planner fuzz seed corpus, and a short fuzzing smoke pass
# over the safety invariants.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run TestGolden ./internal/sim
	$(GO) test -run FuzzGuardedPlanner ./internal/sim
	$(GO) test -run FuzzIBPContainment ./internal/nn/ibp
	$(MAKE) fuzz-smoke

# Re-bless the golden traces after an intentional behaviour change.
golden:
	$(GO) test -run TestGolden ./internal/sim -update

# Short fuzzing pass: ~20s per safety target.  The full corpus grows under
# `go test -fuzz <Target> <pkg>` without a -fuzztime bound.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCompoundSafety -fuzztime 20s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzCarFollowSafety -fuzztime 20s ./internal/carfollow
	$(GO) test -run '^$$' -fuzz FuzzPlatoonSafety -fuzztime 20s ./internal/platoon
	$(GO) test -run '^$$' -fuzz FuzzGuardedPlanner -fuzztime 20s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzBatchParity -fuzztime 20s ./internal/sim/batch
	$(GO) test -run '^$$' -fuzz FuzzIBPContainment -fuzztime 20s ./internal/nn/ibp

# Optional linters plus the in-tree determinism hygiene check: no global
# math/rand calls and no new time.Now in the stepping packages (see
# scripts/lint_determinism.sh for the rationale and the probe budget).
lint-extra:
	./scripts/lint_determinism.sh
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping"

# Allocation-regression gate: a warmed scratch arena must keep the episode
# hot path allocation-free (budget in internal/sim/alloc_test.go), the
# arena path must stay bit-identical to the allocate-per-episode path, and
# the lockstep batch engine must amortize below the scalar 1 alloc/episode
# bar at width 8 (internal/sim/batch/alloc_test.go).
alloc-gate:
	$(GO) test -run 'TestEpisodeAllocs|TestMultiEpisodeAllocs|TestScratchParity|TestCertifyEpisodeAllocs' ./internal/sim -v
	$(GO) test -run TestBatchEpisodeAllocs ./internal/sim/batch -v
	$(GO) test -run TestIBPAllocs ./internal/nn/ibp -v

# Certification gate: the IBP soundness property suites (interval network
# containment, the leftturn/carfollow feature brackets, the monitor edge
# cases), the committed fuzz corpus replay, and a quick certification sweep
# over the trained models asserting zero certified-range misses on the
# clean canonical scenario.
ibp-gate:
	$(GO) test ./internal/nn/ibp -count=1
	$(GO) test -run 'TestFeatureBox' ./internal/leftturn ./internal/carfollow -count=1
	$(GO) test -run 'TestCertify' ./internal/sim -count=1
	$(GO) test ./internal/monitor -count=1
	$(GO) run ./cmd/bench -ibp -quick -out /tmp/BENCH_ibp_gate.json

# Serving CI gate: a short soak (500 concurrent sessions stepped to
# termination under the burst preset) asserting the p99 step-latency SLO,
# zero sound violations, zero collisions, and no goroutine leak across
# Server.Close, plus the full session-lifecycle suite.
serve-smoke:
	SERVE_SOAK_SESSIONS=500 $(GO) test ./internal/serve -count=1 -v

# Distributed-campaign CI gate: a campaignd coordinator with two bench
# -worker processes, one hard-killed mid-shard and revived from its
# checkpoint; the folded stats must be byte-identical (cmp) to a
# single-process run of the same campaign, and the revival must resume
# mid-shard rather than recompute.  See scripts/dist_smoke.sh.
dist-smoke:
	./scripts/dist_smoke.sh

# Go micro/macro benchmarks only (no unit tests alongside).
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# Full canonical campaign matrix through the sharded engine; writes
# BENCH_campaign.json with throughput, latency percentiles, Wilson-interval
# outcome rates, and the parallel-speedup probe.
bench-campaign:
	$(GO) run ./cmd/bench -out BENCH_campaign.json

# Full canonical matrix through the lockstep batch engine (8 lanes per
# group): statistics are bit-identical to bench-campaign, only the
# throughput numbers move.  Writes BENCH_batch.json for comparison.
bench-batch:
	$(GO) run ./cmd/bench -batch 8 -out BENCH_batch.json

# Small stable snapshot (committed as BENCH_seed.json) for regression
# comparison across machines and revisions.
bench-seed:
	$(GO) run ./cmd/bench -quick -out BENCH_seed.json

# CI safety gate: one 10k-episode campaign with every invariant checker in
# fail mode; exits nonzero on the first violation.
campaign-smoke:
	$(GO) run ./cmd/bench -smoke

# Guard CI gate: the acceptance worst cases (half of all planner calls
# panicking / returning NaN) over 10k episodes each, containment checkers
# in fail mode.
guard-smoke:
	$(GO) run ./cmd/bench -smoke -guard

# Platoon CI gate: a clean four-vehicle chain and one with the burst
# preset on its middle link, 10k episodes each, the chain's checkers
# (pairwise no-collision, per-link soundness, true-state slack, string
# stability) in fail mode.
platoon-smoke:
	$(GO) run ./cmd/bench -smoke -platoon 4

# N-vehicle chained-link platoon matrix: canonical settings on all links
# plus the burst preset rotated over each link; writes BENCH_platoon.json.
bench-platoon:
	$(GO) run ./cmd/bench -platoon 4 -out BENCH_platoon.json

# Compute-fault matrix: one guarded campaign per planner-fault preset;
# writes BENCH_guard.json with mean η and crash-free rate per preset.
bench-guard:
	$(GO) run ./cmd/bench -guard -out BENCH_guard.json

# Allocation/latency matrix: each episode runner measured with the scratch
# arena off and on (ns/step, B/op, allocs/op); writes BENCH_perf.json.
bench-perf:
	$(GO) run ./cmd/bench -perf -out BENCH_perf.json

# Offline certification sweep: every trained-NN design on the clean
# canonical scenario in IBP verified mode; fails on any certified-range
# miss.  Writes BENCH_ibp.json.
bench-ibp:
	$(GO) run ./cmd/bench -ibp -out BENCH_ibp.json
