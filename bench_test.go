package safeplan

// Benchmark harness: one benchmark per paper artifact (Tables I–II,
// Figures 5a–5f, 6a–6b, the §V-C RMSE study) plus the DESIGN.md §6
// ablations and micro-benchmarks of the hot paths.  Each table/figure
// benchmark runs a reduced episode count per iteration (benchEpisodes)
// so `go test -bench=.` finishes in minutes; the cmd/tables and
// cmd/figures binaries regenerate the artifacts at any scale.

import (
	"math/rand"
	"sync"
	"testing"

	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/dynamics"
	"safeplan/internal/experiments"
	"safeplan/internal/fusion"
	"safeplan/internal/kalman"
	"safeplan/internal/leftturn"
	"safeplan/internal/monitor"
	"safeplan/internal/reach"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
)

const (
	benchEpisodes  = 60 // episodes per table cell / sweep point, per iteration
	benchSweepN    = 20 // episodes per sweep point (20 points per figure)
	benchTrajsRMSE = 20
	benchSeed      = 42
)

var (
	benchPlannersOnce sync.Once
	benchPlanners     experiments.Planners
)

// planners returns the expert κ_n pair (construction is free; the trained
// NN pair is exercised by BenchmarkImitationTraining separately).
func planners() experiments.Planners {
	benchPlannersOnce.Do(func() {
		benchPlanners = experiments.ExpertPlanners(leftturn.DefaultConfig())
	})
	return benchPlanners
}

// --- Tables ---------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	pl := planners()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table(experiments.Conservative, pl, benchEpisodes, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchTable1 runs Table 1's three communication settings under
// the guaranteed ultimate-conservative design through the lockstep batch
// engine at width 8 — the batched counterpart of BenchmarkTable1, for
// tracking the structure-of-arrays engine's end-to-end throughput (the
// statistics themselves are bit-identical to the scalar path).
func BenchmarkBatchTable1(b *testing.B) {
	pl := planners()
	type cell struct {
		name  string
		cfg   SimConfig
		agent Agent
	}
	var cells []cell
	for _, s := range experiments.StandardSettings() {
		cfg := experiments.SettingConfig(s)
		cfg.InfoFilter = true
		cells = append(cells, cell{s.Name, cfg, BuildUltimate(cfg.Scenario, pl.Cons)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			if _, err := RunBatchedCampaign(CampaignSpec{
				Name:       "bench-batch/" + c.name,
				Episodes:   benchEpisodes,
				BaseSeed:   benchSeed,
				BatchSize:  8,
				Invariants: StandardInvariants(c.cfg.Scenario),
			}, LeftTurnBatchCampaign(c.cfg, c.agent)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	pl := planners()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table(experiments.Aggressive, pl, benchEpisodes, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5 sweeps (a/b share a sweep; c/d and e/f likewise — the two
// sub-figures are two projections of the same campaign, so each benchmark
// regenerates both of its pair) -------------------------------------------

func BenchmarkFig5aReachVsTransmission(b *testing.B) {
	benchSweep(b, experiments.SweepTransmission)
}

func BenchmarkFig5bEmergencyVsTransmission(b *testing.B) {
	benchSweep(b, experiments.SweepTransmission)
}

func BenchmarkFig5cReachVsDrop(b *testing.B) {
	benchSweep(b, experiments.SweepDrop)
}

func BenchmarkFig5dEmergencyVsDrop(b *testing.B) {
	benchSweep(b, experiments.SweepDrop)
}

func BenchmarkFig5eReachVsSensor(b *testing.B) {
	benchSweep(b, experiments.SweepSensor)
}

func BenchmarkFig5fEmergencyVsSensor(b *testing.B) {
	benchSweep(b, experiments.SweepSensor)
}

func benchSweep(b *testing.B, sweep func(experiments.Planners, int, int64) ([]experiments.SweepPoint, error)) {
	b.Helper()
	pl := planners()
	for i := 0; i < b.N; i++ {
		if _, err := sweep(pl, benchSweepN, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6 traces and the RMSE study -----------------------------------

func BenchmarkFig6aFilterTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FilterTrace(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bWindowTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WindowTrace(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FilterRMSE(benchTrajsRMSE, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §6) ----------------------------------------------

func BenchmarkAblationFilter(b *testing.B)       { benchAblation(b) }
func BenchmarkAblationAggressive(b *testing.B)   { benchAblation(b) }
func BenchmarkAblationReplay(b *testing.B)       { benchAblation(b) }
func BenchmarkAblationSoundMonitor(b *testing.B) { benchAblation(b) }

// benchAblation runs the full six-variant ablation campaign (all four
// named ablations are columns of the same run).
func benchAblation(b *testing.B) {
	b.Helper()
	pl := planners()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(pl, benchEpisodes, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Training --------------------------------------------------------------

func BenchmarkImitationTraining(b *testing.B) {
	sc := DefaultScenario()
	for i := 0; i < b.N; i++ {
		if _, _, err := TrainPlanner(sc, NewConservativeExpert(sc), "bench",
			TrainOptions{Samples: 4000, Epochs: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the per-step hot path ------------------------------

func BenchmarkEpisode(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := BuildUltimate(cfg.Scenario, planners().Cons)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, agent, sim.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpisodeNopCollector is BenchmarkEpisode with telemetry off
// (nil collector) — it must track BenchmarkEpisode within noise, since a
// detached collector costs exactly one nil check per probe site.
// BenchmarkEpisodeTelemetry attaches a live Metrics collector so the two
// together bound the cost of the instrumentation itself.
func BenchmarkEpisodeNopCollector(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := BuildUltimate(cfg.Scenario, planners().Cons)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, agent, sim.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpisodeTelemetry(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := BuildUltimate(cfg.Scenario, planners().Cons)
	m := NewMetrics()
	agent.SetCollector(m)
	defer agent.SetCollector(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, agent, sim.Options{Seed: int64(i), Collector: m}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKalmanUpdate(b *testing.B) {
	f := kalman.New(kalman.Config{DeltaP: 1, DeltaV: 1, DeltaA: 1})
	f.InitExact(0, 0, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Update(float64(i+1)*0.1, float64(i), 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachabilityAt(b *testing.B) {
	lim := dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3}
	snap := reach.Snapshot{T: 0, S: dynamics.State{P: -35, V: 8}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reach.At(snap, float64(i%100)*0.05, lim)
	}
}

func BenchmarkConservativeWindow(b *testing.B) {
	cfg := leftturn.DefaultConfig()
	est := leftturn.ExactEstimate(dynamics.State{P: -35, V: 8}, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.ConservativeWindow(est)
	}
}

func BenchmarkAggressiveWindow(b *testing.B) {
	cfg := leftturn.DefaultConfig()
	est := leftturn.ExactEstimate(dynamics.State{P: -35, V: 8}, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.AggressiveWindow(est)
	}
}

func BenchmarkMonitorAssess(b *testing.B) {
	cfg := leftturn.DefaultConfig()
	m := monitor.New(cfg)
	est := leftturn.ExactEstimate(dynamics.State{P: -20, V: 10}, 0.5)
	w := cfg.ConservativeWindow(est)
	ego := dynamics.State{P: -12, V: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Assess(ego, w)
	}
}

func BenchmarkFusionEstimate(b *testing.B) {
	f, err := fusion.New(fusion.Config{
		Limits:    dynamics.Limits{VMin: 0, VMax: 15, AMin: -6, AMax: 3},
		Sensor:    sensor.Uniform(1),
		UseKalman: true,
		Replay:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	f.InitExact(0, dynamics.State{P: -35, V: 8}, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= 50; i++ {
		f.OnReading(sensor.Reading{
			T: float64(i) * 0.1,
			P: -35 + 8*float64(i)*0.1 + rng.Float64(),
			V: 8 + rng.Float64(),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.EstimateAt(5 + float64(i%10)*0.05)
	}
}

func BenchmarkNNPlannerInference(b *testing.B) {
	sc := DefaultScenario()
	nnp, _, err := TrainPlanner(sc, NewConservativeExpert(sc), "bench",
		TrainOptions{Samples: 2000, Epochs: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	est := leftturn.ExactEstimate(dynamics.State{P: -35, V: 8}, 0)
	w := sc.ConservativeWindow(est)
	ego := dynamics.State{P: -20, V: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nnp.Accel(float64(i)*0.05, ego, w)
	}
}

// BenchmarkStreamTable exercises the multi-vehicle extension study.
func BenchmarkStreamTable(b *testing.B) {
	pl := planners()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StreamTable(pl, benchSweepN, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiEpisode measures one three-vehicle closed-loop episode.
func BenchmarkMultiEpisode(b *testing.B) {
	cfg := sim.DefaultMultiConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := BuildMultiUltimate(cfg.Scenario, planners().Cons)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMulti(cfg, agent, sim.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCarFollowTable exercises the second case study's table.
func BenchmarkCarFollowTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CarFollowTable(benchSweepN, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedCampaign measures the campaign engine end to end: 1000
// delayed-comms episodes through the sharded runner with the standard
// invariant checkers attached (the per-step checking overhead is part of
// what this benchmark tracks).
func BenchmarkShardedCampaign(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	sc := cfg.Scenario
	agent := BuildUltimate(sc, planners().Cons)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunShardedCampaign(CampaignSpec{
			Name:       "bench",
			Episodes:   1000,
			BaseSeed:   benchSeed,
			Invariants: StandardInvariants(sc),
		}, LeftTurnCampaign(cfg, agent)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCarFollowEpisode measures one car-following episode.
func BenchmarkCarFollowEpisode(b *testing.B) {
	cfg := carfollow.DefaultSimConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	agent := carfollow.NewUltimate(cfg.Scenario, carfollow.AggressiveExpert(cfg.Scenario))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := carfollow.RunEpisode(cfg, agent, sim.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
