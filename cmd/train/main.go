// Command train imitation-trains the two NN planners of the evaluation
// (κ_n,cons and κ_n,aggr) and writes them as JSON model files, which
// cmd/tables, cmd/figures, and cmd/simulate can load with -models.
//
// Usage:
//
//	train [-out models] [-samples 20000] [-epochs 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"safeplan/internal/carfollow"
	"safeplan/internal/experiments"
	"safeplan/internal/leftturn"
	"safeplan/internal/nn"
	"safeplan/internal/planner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("train: ")
	var (
		out     = flag.String("out", "models", "output directory for the model files")
		samples = flag.Int("samples", 20000, "imitation dataset size per planner")
		epochs  = flag.Int("epochs", 40, "training epochs")
		seed    = flag.Int64("seed", 1, "master seed (weights, rollouts, shuffling)")
	)
	flag.Parse()

	cfg := leftturn.DefaultConfig()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	train := func(teacher planner.Planner, label, file string, seed int64) {
		opts := planner.TrainOptions{Samples: *samples, Epochs: *epochs, Seed: seed}
		nnp, loss, err := planner.TrainNNPlanner(cfg, teacher, label, opts)
		if err != nil {
			log.Fatal(err)
		}
		path := *out + "/" + file
		if err := nnp.Save(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  loss=%.4f  params=%d  → %s\n", label, loss, nnp.Net.NumParams(), path)
	}
	train(planner.ConservativeExpert(cfg), "nn-cons", experiments.ConsModelFile, *seed)
	train(planner.AggressiveExpert(cfg), "nn-aggr", experiments.AggrModelFile, *seed+1)

	// The car-following case study's planners, trained over the same budget.
	cf := carfollow.DefaultConfig()
	trainCF := func(teacher carfollow.Planner, label, file string, seed int64) {
		opts := carfollow.TrainOptions{Samples: *samples, Epochs: *epochs, Seed: seed}
		nnp, loss, err := carfollow.TrainNNPlanner(cf, teacher, label, opts)
		if err != nil {
			log.Fatal(err)
		}
		path := *out + "/" + file
		data, err := nnMarshal(nnp)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  loss=%.4f  params=%d  → %s\n", label, loss, nnp.Net.NumParams(), path)
	}
	trainCF(carfollow.ConservativeExpert(cf), "cf-cons", "cf-cons.json", *seed+2)
	trainCF(carfollow.AggressiveExpert(cf), "cf-aggr", "cf-aggr.json", *seed+3)
}

// nnMarshal serializes a car-following NN planner's model.
func nnMarshal(p *carfollow.NNPlanner) ([]byte, error) {
	return nn.MarshalModel(p.Net, p.Norm)
}
