// Command figures regenerates the paper's Figure 5 sweeps (reaching time
// and emergency frequency versus transmission period, message drop
// probability, and sensor uncertainty), the Figure 6 traces (information
// filter and passing-window estimation), the §V-C RMSE study, and the
// ablation table of DESIGN.md §6.
//
// Usage:
//
//	figures [-fig 5a|5b|5c|5d|5e|5f|6a|6b|rmse|ablation|all]
//	        [-n 400] [-seed 42] [-csv] [-nn] [-models DIR]
//
// Beyond the paper's figures, "burst" sweeps the mean loss-burst length
// of a Gilbert–Elliott channel, "worstcase" tabulates the adversarial
// disturbance settings (burst loss, jitter+reordering, stale replay,
// blackout, sensor bias drift) — the worst-case companion of Table I/II —
// and "platoon" tabulates the N-vehicle chained-link platoon: a
// chain-length sweep under delayed messaging plus the burst preset
// rotated over each individual V2V link.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"safeplan/internal/experiments"
	"safeplan/internal/leftturn"
	"safeplan/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig    = flag.String("fig", "all", "figure id: 5a–5f, 6a, 6b, rmse, ablation, stream, carfollow, platoon, burst, worstcase, or all")
		n      = flag.Int("n", 400, "episodes per sweep point")
		seed   = flag.Int64("seed", experiments.DefaultSeed, "base seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of tables/ASCII charts")
		useNN  = flag.Bool("nn", false, "imitation-train NN planners as κ_n")
		models = flag.String("models", "", "load trained NN planners from this directory")
	)
	flag.Parse()

	cfg := leftturn.DefaultConfig()
	var pl experiments.Planners
	var err error
	switch {
	case *models != "":
		pl, err = experiments.LoadPlanners(*models, cfg)
	case *useNN:
		log.Print("training NN planners…")
		pl, err = experiments.TrainedPlanners(cfg, *seed)
	default:
		pl = experiments.ExpertPlanners(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	app := &app{pl: pl, n: *n, seed: *seed, csv: *csv}
	figs := map[string]func() error{
		"5a": app.fig5a, "5b": app.fig5b,
		"5c": app.fig5c, "5d": app.fig5d,
		"5e": app.fig5e, "5f": app.fig5f,
		"6a": app.fig6a, "6b": app.fig6b,
		"rmse": app.rmse, "ablation": app.ablation,
		"stream": app.stream, "carfollow": app.carfollow,
		"platoon": app.platoon,
		"burst":   app.burst, "worstcase": app.worstcase,
	}
	if *fig == "all" {
		for _, id := range []string{"5a", "5b", "5c", "5d", "5e", "5f", "6a", "6b", "rmse", "ablation", "stream", "carfollow", "platoon", "burst", "worstcase"} {
			if err := figs[id](); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		log.Fatalf("unknown figure %q", *fig)
	}
	if err := f(); err != nil {
		log.Fatal(err)
	}
}

type app struct {
	pl   experiments.Planners
	n    int
	seed int64
	csv  bool

	transmission, drop, sensorPts, burstPts []experiments.SweepPoint
}

func (a *app) sweep(kind string) ([]experiments.SweepPoint, error) {
	var err error
	switch kind {
	case "transmission":
		if a.transmission == nil {
			a.transmission, err = experiments.SweepTransmission(a.pl, a.n, a.seed)
		}
		return a.transmission, err
	case "drop":
		if a.drop == nil {
			a.drop, err = experiments.SweepDrop(a.pl, a.n, a.seed)
		}
		return a.drop, err
	case "burst":
		if a.burstPts == nil {
			a.burstPts, err = experiments.SweepBurst(a.pl, a.n, a.seed)
		}
		return a.burstPts, err
	default:
		if a.sensorPts == nil {
			a.sensorPts, err = experiments.SweepSensor(a.pl, a.n, a.seed)
		}
		return a.sensorPts, err
	}
}

// renderSweep prints a sweep either as a table/CSV or as an ASCII chart.
func (a *app) renderSweep(title, xLabel, kind string, emergency bool) error {
	pts, err := a.sweep(kind)
	if err != nil {
		return err
	}
	fmt.Printf("%s  (n=%d per point)\n", title, a.n)
	pick := func(p experiments.SweepPoint) (float64, float64, float64) {
		if emergency {
			return p.PureEm, p.BasicEm, p.UltEm
		}
		return p.PureReach, p.BasicReach, p.UltReach
	}
	if a.csv {
		tb := textio.NewTable(xLabel, "pure", "basic", "ultimate")
		for _, p := range pts {
			pu, ba, ul := pick(p)
			tb.AddRow(textio.F(p.X, 3), textio.F(pu, 4), textio.F(ba, 4), textio.F(ul, 4))
		}
		if err := tb.CSV(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	xs := make([]float64, len(pts))
	pu := make([]float64, len(pts))
	ba := make([]float64, len(pts))
	ul := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		pu[i], ba[i], ul[i] = pick(p)
	}
	if err := textio.Chart(os.Stdout, fmt.Sprintf("  x = %s", xLabel), xs, 12,
		textio.Series{Name: "pure", Y: pu},
		textio.Series{Name: "basic", Y: ba},
		textio.Series{Name: "ultimate", Y: ul}); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func (a *app) fig5a() error {
	return a.renderSweep("Fig. 5a: reaching time vs transmission time step", "dt_m=dt_s [s]", "transmission", false)
}
func (a *app) fig5b() error {
	return a.renderSweep("Fig. 5b: emergency frequency vs transmission time step", "dt_m=dt_s [s]", "transmission", true)
}
func (a *app) fig5c() error {
	return a.renderSweep("Fig. 5c: reaching time vs message drop probability", "p_d", "drop", false)
}
func (a *app) fig5d() error {
	return a.renderSweep("Fig. 5d: emergency frequency vs message drop probability", "p_d", "drop", true)
}
func (a *app) fig5e() error {
	return a.renderSweep("Fig. 5e: reaching time vs sensor uncertainty", "delta", "sensor", false)
}
func (a *app) fig5f() error {
	return a.renderSweep("Fig. 5f: emergency frequency vs sensor uncertainty", "delta", "sensor", true)
}

func (a *app) fig6a() error {
	samples, err := experiments.FilterTrace(a.seed)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 6a: measured vs filtered velocity (sensors only, δ=3)")
	tb := textio.NewTable("t", "true_v", "measured_v", "filtered_v")
	// Subsample for terminal output; CSV gets everything.
	step := 1
	if !a.csv && len(samples) > 60 {
		step = len(samples) / 60
	}
	for i := 0; i < len(samples); i += step {
		s := samples[i]
		tb.AddRow(textio.F(s.T, 2), textio.F(s.TrueV, 3), textio.F(s.MeasV, 3), textio.F(s.FilteredV, 3))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) fig6b() error {
	res, err := experiments.WindowTrace(a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 6b: passing-window estimates (real passing: %.2f–%.2f s)\n",
		res.RealEnter, res.RealExit)
	tb := textio.NewTable("t", "cons_enter", "cons_exit", "aggr_enter", "aggr_exit")
	step := 1
	if !a.csv && len(res.Samples) > 40 {
		step = len(res.Samples) / 40
	}
	for i := 0; i < len(res.Samples); i += step {
		s := res.Samples[i]
		tb.AddRow(textio.F(s.T, 2), textio.F(s.ConsEnter, 2), textio.F(s.ConsExit, 2),
			textio.F(s.AggrEnter, 2), textio.F(s.AggrExit, 2))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) rmse() error {
	trajectories := 200
	res, err := experiments.FilterRMSE(trajectories, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("§V-C RMSE study (%d trajectories, sensors only, δ=2)\n", res.Trajectories)
	tb := textio.NewTable("quantity", "raw RMSE", "filtered RMSE", "reduction")
	tb.AddRow("position", textio.F(res.PosBefore, 4), textio.F(res.PosAfter, 4),
		textio.F(res.PosReductionPercent, 1)+"%")
	tb.AddRow("velocity", textio.F(res.VelBefore, 4), textio.F(res.VelAfter, 4),
		textio.F(res.VelReductionPercent, 1)+"%")
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) ablation() error {
	rows, err := experiments.Ablations(a.pl, a.n, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Ablations (messages delayed, conservative κ_n, n=%d)\n", a.n)
	tb := textio.NewTable("variant", "reaching time", "safe rate", "η value", "emergency freq")
	for _, r := range rows {
		tb.AddRow(r.Variant, textio.F(r.ReachTime, 3)+"s", textio.Pct(r.SafeRate),
			textio.F(r.Eta, 3), textio.Pct(r.EmergencyFreq))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) stream() error {
	rows, err := experiments.StreamTable(a.pl, a.n, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Multi-vehicle extension: oncoming stream, messages delayed, aggressive κ_n (n=%d)\n", a.n)
	tb := textio.NewTable("vehicles", "planner", "reaching time", "safe rate", "η value", "emergency freq")
	for _, r := range rows {
		tb.AddRow(fmt.Sprint(r.Vehicles), r.PlannerType,
			textio.F(r.ReachTime, 3)+"s", textio.Pct(r.SafeRate),
			textio.F(r.Eta, 3), textio.Pct(r.EmergencyFreq))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) platoon() error {
	rows, err := experiments.PlatoonTable(a.n, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Platoon extension: chained V2V links, ultimate aggressive κ_n (n=%d)\n", a.n)
	tb := textio.NewTable("setting", "vehicles", "safe rate", "η value", "emergency freq", "min link gap", "max amplification")
	for _, r := range rows {
		tb.AddRow(r.Setting, fmt.Sprint(r.Vehicles),
			textio.Pct(r.SafeRate), textio.F(r.Eta, 3), textio.Pct(r.EmergencyFreq),
			fOrDash(r.MinLinkGap, 2), fOrDash(r.MaxAmp, 3))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

// fOrDash formats a float like textio.F but renders NaN — the "column
// does not apply to this row" marker — as a dash.
func fOrDash(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return textio.F(v, prec)
}

func (a *app) burst() error {
	return a.renderSweep("Burst-loss sweep: reaching time vs mean burst length (Gilbert–Elliott)",
		"mean burst [msgs]", "burst", false)
}

func (a *app) worstcase() error {
	rows, err := experiments.WorstCaseTable(experiments.Aggressive, a.pl, a.n, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Worst-case disturbance table, aggressive κ_n (n=%d)\n", a.n)
	tb := textio.NewTable("setting", "planner", "reaching time", "safe rate", "η value", "emergency freq")
	for _, r := range rows {
		tb.AddRow(r.Setting, r.PlannerType,
			textio.F(r.ReachTime, 3)+"s", textio.Pct(r.SafeRate),
			textio.F(r.Eta, 3), textio.Pct(r.EmergencyFreq))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}

func (a *app) carfollow() error {
	rows, err := experiments.CarFollowTable(a.n, a.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Car-following case study (§II-A unsafe set), aggressive κ_n (n=%d)\n", a.n)
	tb := textio.NewTable("settings", "planner", "reaching time", "safe rate", "η value", "emergency freq")
	for _, r := range rows {
		tb.AddRow(r.Setting, r.PlannerType,
			textio.F(r.ReachTime, 3)+"s", textio.Pct(r.SafeRate),
			textio.F(r.Eta, 3), textio.Pct(r.EmergencyFreq))
	}
	var err2 error
	if a.csv {
		err2 = tb.CSV(os.Stdout)
	} else {
		err2 = tb.Render(os.Stdout)
	}
	fmt.Println()
	return err2
}
