package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"

	"safeplan/internal/campaign"
	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/disturb"
	"safeplan/internal/platoon"
	"safeplan/internal/sim"
)

// platoonBenchReport is the file layout of BENCH_platoon.json: the
// N-vehicle chained-link matrix — every canonical communication setting
// applied uniformly to all links, plus the adversarial burst preset
// rotated over each individual link, the disturbance geometry the
// per-link channel design exists for.
type platoonBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	Vehicles            int   `json:"vehicles"`
	EpisodesPerCampaign int   `json:"episodes_per_campaign"`
	BaseSeed            int64 `json:"base_seed"`
	Workers             int   `json:"workers"`

	Campaigns []*campaign.Report `json:"campaigns"`
}

// platoonWorkload is one named platoon campaign configuration.
type platoonWorkload struct {
	Name string
	Cfg  platoon.SimConfig
}

// platoonInvariants is the chain's checker set: pairwise no-collision,
// per-link sound estimates, the true-state stopping-distance slack, and
// the string-stability bound on consecutive-link peak gap errors.
func platoonInvariants(cfg platoon.SimConfig) []sim.Invariant {
	return []sim.Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		carfollow.TrueSlack{Cfg: cfg.LinkScenario()},
		platoon.StringStability{},
	}
}

// platoonAgent builds the matrix's NN vehicle: the ultimate compound
// design around the aggressive expert (the planner that exercises κ_e
// hardest), constructed against the effective per-link scenario so its
// monitoring matches the engine's.
func platoonAgent(cfg platoon.SimConfig) carfollow.Agent {
	sc := cfg.LinkScenario()
	return carfollow.NewUltimate(sc, carfollow.AggressiveExpert(sc))
}

// platoonMatrix builds the benchmark workloads for an N-vehicle chain.
func platoonMatrix(vehicles int) []platoonWorkload {
	base := func() platoon.SimConfig {
		cfg := platoon.DefaultSimConfig()
		cfg.Vehicles = vehicles
		cfg.InfoFilter = true
		return cfg
	}
	var out []platoonWorkload

	clean := base()
	out = append(out, platoonWorkload{"platoon/clean", clean})

	delayed := base()
	delayed.Comms = comms.Delayed(0.25, 0.5)
	out = append(out, platoonWorkload{"platoon/delayed-all-links", delayed})

	lost := base()
	lost.Comms = comms.Lost()
	out = append(out, platoonWorkload{"platoon/lost-all-links", lost})

	bm, err := disturb.Preset("burst")
	if err != nil {
		// Registry constant; failure is a programming error.
		panic(err)
	}
	for link := 0; link < vehicles-1; link++ {
		cfg := base()
		lc := make([]comms.Config, vehicles-1)
		for l := range lc {
			lc[l] = comms.NoDisturbance()
		}
		lc[link] = comms.Disturbed(bm)
		cfg.LinkComms = lc
		out = append(out, platoonWorkload{fmt.Sprintf("platoon/burst-link-%d", link), cfg})
	}
	return out
}

// runPlatoonMatrix runs the chained-link matrix through the sharded
// campaign engine with the checkers in counting mode and writes
// BENCH_platoon.json.  Like the guard matrix, any nonzero violation
// counter fails the run: the report doubles as the chain's safety audit.
func runPlatoonMatrix(vehicles, n, w int, seed int64, out string) {
	report := platoonBenchReport{
		GeneratedBy:         "cmd/bench -platoon",
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		Vehicles:            vehicles,
		EpisodesPerCampaign: n,
		BaseSeed:            seed,
		Workers:             w,
	}
	for _, wl := range platoonMatrix(vehicles) {
		if err := wl.Cfg.Validate(); err != nil {
			log.Fatalf("campaign %s: %v", wl.Name, err)
		}
		rep, err := campaign.Run(campaign.Spec{
			Name:            wl.Name,
			Episodes:        n,
			BaseSeed:        seed,
			Workers:         w,
			Invariants:      platoonInvariants(wl.Cfg),
			CountViolations: true,
		}, campaign.Platoon(wl.Cfg, platoonAgent(wl.Cfg)))
		if err != nil {
			log.Fatalf("campaign %s: %v", wl.Name, err)
		}
		for name, v := range rep.Stats.InvariantViolations {
			if v != 0 {
				log.Fatalf("campaign %s: invariant %s violated %d times", wl.Name, name, v)
			}
		}
		log.Printf("%-28s %6d eps  %8.0f eps/s  safe %.4f [%.4f, %.4f]",
			wl.Name, rep.Stats.Episodes, rep.Perf.EpisodesPerSec,
			rep.Stats.SafeRate.Rate, rep.Stats.SafeRate.Lo, rep.Stats.SafeRate.Hi)
		report.Campaigns = append(report.Campaigns, rep)
	}

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d campaigns)", out, len(report.Campaigns))
}

// runPlatoonSmoke is the platoon CI gate: a clean chain and one with the
// adversarial burst preset on its middle link, every checker — including
// string stability — in fail mode.  Any pairwise gap violation, unsound
// link estimate, burned stopping-distance slack, or string-stability
// breach fails the process, and the sound_violations counter must come
// back zero from both campaigns.
func runPlatoonSmoke(vehicles, workers int, seed int64) {
	clean := platoon.DefaultSimConfig()
	clean.Vehicles = vehicles
	clean.InfoFilter = true

	burst := platoon.DefaultSimConfig()
	burst.Vehicles = vehicles
	burst.InfoFilter = true
	bm, err := disturb.Preset("burst")
	if err != nil {
		log.Fatal(err)
	}
	lc := make([]comms.Config, vehicles-1)
	for l := range lc {
		lc[l] = comms.NoDisturbance()
	}
	lc[(vehicles-1)/2] = comms.Disturbed(bm)
	burst.LinkComms = lc

	for _, s := range []struct {
		label string
		cfg   platoon.SimConfig
	}{
		{"clean", clean},
		{"burst-mid-link", burst},
	} {
		if err := s.cfg.Validate(); err != nil {
			log.Fatalf("PLATOON SMOKE FAILED (%s): %v", s.label, err)
		}
		rep, err := campaign.Run(campaign.Spec{
			Name:       "platoon-smoke/" + s.label,
			Episodes:   10_000,
			BaseSeed:   seed,
			Workers:    workers,
			Invariants: platoonInvariants(s.cfg),
		}, campaign.Platoon(s.cfg, platoonAgent(s.cfg)))
		if err != nil {
			log.Fatalf("PLATOON SMOKE FAILED (%s): %v", s.label, err)
		}
		if rep.Stats.Collided != 0 {
			log.Fatalf("PLATOON SMOKE FAILED (%s): %d collisions (must be 0)", s.label, rep.Stats.Collided)
		}
		if rep.Stats.SoundViolations != 0 {
			log.Fatalf("PLATOON SMOKE FAILED (%s): %d sound-interval violations (must be 0)",
				s.label, rep.Stats.SoundViolations)
		}
		fmt.Printf("smoke OK (platoon %s, N=%d): %d episodes, safe %d/%d, %.0f eps/s, emergency episodes %d, sound violations 0\n",
			s.label, vehicles, rep.Stats.Episodes, rep.Stats.Episodes-rep.Stats.Collided, rep.Stats.Episodes,
			rep.Perf.EpisodesPerSec, rep.Stats.EmergencyEpisodes)
	}
}
