// Command bench runs the canonical Monte-Carlo benchmark campaigns through
// the sharded campaign engine (internal/campaign) and writes a machine-
// readable report with throughput, latency percentiles, and Wilson-interval
// outcome rates.
//
// Usage:
//
//	bench [-episodes 5000] [-workers 0] [-seed 42] [-out BENCH_campaign.json]
//	      [-quick] [-smoke] [-guard] [-platoon N] [-batch N] [-checkpoint DIR]
//
// The default matrix covers the paper's three communication settings (none,
// delayed, lost) for both expert planners under the ultimate compound
// design, plus the bursty Gilbert–Elliott and worst-case adversarial
// disturbance presets.  Every campaign runs with the full invariant-checker
// set in counting mode, so the report doubles as a safety audit: the
// invariant_violations counters must be zero for the guaranteed designs.
//
// -quick shrinks the matrix for fast regression snapshots (BENCH_seed.json);
// -smoke runs a single 10k-episode campaign with the checkers in fail mode
// and exits nonzero on the first violation — the CI safety gate.
// -guard switches to the compute-fault matrix: one campaign per planner-
// fault preset under the guarded ultimate design, reporting mean η and the
// crash-free rate per preset (BENCH_guard.json).  -guard -smoke is the
// guard's own CI gate: the acceptance worst cases (PanicP and NaNOutput at
// p = 0.5) over 10k episodes each with the containment checkers in fail
// mode.
// -platoon N switches to the N-vehicle chained-link platoon matrix
// (internal/platoon): every canonical communication setting applied
// uniformly to all V2V links, plus the adversarial burst preset rotated
// over each individual link, with the chain's checkers — pairwise
// no-collision, per-link soundness, true-state slack, string stability —
// in counting mode (BENCH_platoon.json).  -platoon N -smoke is the
// platoon's own CI gate: a clean chain and a burst-on-the-middle-link
// chain over 10k episodes each with the checkers in fail mode.
// -batch N steps the canonical left-turn matrix through the lockstep
// batch engine (internal/sim/batch) with N lanes per group instead of the
// scalar episode loop.  Every lane is byte-identical to its scalar
// episode and the fold order is unchanged, so the report's stats match
// the scalar run bit for bit — only the throughput numbers move.
// -ibp runs the offline certification sweep: every trained-NN design on
// the clean canonical scenario in IBP verified mode (internal/nn/ibp),
// each executed κ_n command cross-checked against the certified output
// range.  Any certified-range miss fails the process; the report is
// BENCH_ibp.json.  -models selects the trained-model directory.
// -worker joins a campaignd coordinator as a distributed-campaign worker
// (internal/dist): it leases shards, runs their episodes through the
// workload registry, and submits aggregates that fold byte-identically
// to a local run.  -worker-checkpoint gives the worker a mid-shard
// resume file so a crashed worker restarts at the exact episode it left.
// -checkpoint enables per-campaign checkpoint/resume in the given
// directory: an interrupted bench rerun resumes completed shards instead
// of redoing them.  A corrupt checkpoint file is discarded with a warning
// and the campaign restarts fresh — resumption is an optimization, the
// aggregates are recomputable.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"safeplan/internal/campaign"
	"safeplan/internal/core"
	"safeplan/internal/dist"
	"safeplan/internal/experiments"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
	"safeplan/internal/workloads"
)

// benchReport is the file layout of BENCH_campaign.json / BENCH_seed.json.
type benchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	EpisodesPerCampaign int   `json:"episodes_per_campaign"`
	BaseSeed            int64 `json:"base_seed"`
	Workers             int   `json:"workers"`
	// BatchSize is the lockstep lane count when the matrix ran through the
	// batched engine (-batch); omitted for the scalar episode loop.
	BatchSize int `json:"batch_size,omitempty"`

	// Speedup compares 1-worker and full-worker throughput on the first
	// campaign of the matrix (omitted when running with a single worker).
	Speedup *speedup `json:"speedup,omitempty"`

	Campaigns []*campaign.Report `json:"campaigns"`
}

type speedup struct {
	Campaign        string  `json:"campaign"`
	Workers         int     `json:"workers"`
	EpisodesPerSec1 float64 `json:"episodes_per_sec_1_worker"`
	EpisodesPerSecN float64 `json:"episodes_per_sec_n_workers"`
	Factor          float64 `json:"factor"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		episodes   = flag.Int("episodes", 5000, "episodes per campaign")
		workers    = flag.Int("workers", 0, "worker goroutines (0: one per core)")
		seed       = flag.Int64("seed", 42, "base seed (episode i runs with seed base+i)")
		out        = flag.String("out", "BENCH_campaign.json", "output report path (- for stdout)")
		quick      = flag.Bool("quick", false, "small matrix for regression snapshots (500 episodes unless -episodes is set)")
		smoke      = flag.Bool("smoke", false, "CI safety gate: one 10k-episode campaign, invariants in fail mode")
		guardMode  = flag.Bool("guard", false, "compute-fault matrix: one campaign per planner-fault preset under the guarded design")
		batchSize  = flag.Int("batch", 0, "lockstep batch width for the left-turn matrix (0 or 1: scalar episode loop)")
		checkpoint = flag.String("checkpoint", "", "directory for per-campaign checkpoints (enables resume)")
		perfMode   = flag.Bool("perf", false, "allocation/latency matrix: ns/step, B/op, allocs/op per scenario, scratch off vs on (BENCH_perf.json)")
		ibpMode    = flag.Bool("ibp", false, "certification sweep: every trained-NN design in IBP verified mode, zero certified-range misses required (BENCH_ibp.json)")
		platoonN   = flag.Int("platoon", 0, "chain length for the N-vehicle platoon matrix (BENCH_platoon.json); with -smoke, the platoon CI gate")
		modelDir   = flag.String("models", "models", "trained-model directory for -ibp")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")

		workerAddr = flag.String("worker", "", "run as a distributed campaign worker against this campaignd address")
		workerID   = flag.String("worker-id", "", "worker name in leases and telemetry (default: host-pid)")
		workerCkpt = flag.String("worker-checkpoint", "", "mid-shard checkpoint file for crash resume (worker mode)")
		workerKill = flag.Int("worker-kill-after", 0, "crash seam for the dist-smoke gate: hard-exit the process after N episodes, leaving mid-shard state on disk (0 disables)")
	)
	flag.Parse()

	if *workerAddr != "" {
		runDistWorker(*workerAddr, *workerID, *workerCkpt, *workerKill)
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *perfMode {
		o := *out
		if !flagPassed("out") {
			o = "BENCH_perf.json"
		}
		runPerfMatrix(*seed, o)
		return
	}

	if *platoonN != 0 && *platoonN < 2 {
		log.Fatalf("-platoon %d: a chain needs at least two vehicles (head + ego)", *platoonN)
	}

	if *smoke {
		switch {
		case *guardMode:
			runGuardSmoke(*workers, *seed)
		case *platoonN >= 2:
			runPlatoonSmoke(*platoonN, *workers, *seed)
		default:
			runSmoke(*workers, *seed)
		}
		return
	}

	n := *episodes
	if *quick && !flagPassed("episodes") {
		n = 500
	}
	w := *workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}

	if *guardMode {
		o := *out
		if !flagPassed("out") {
			o = "BENCH_guard.json"
		}
		runGuardMatrix(n, w, *seed, o, *checkpoint)
		return
	}

	if *ibpMode {
		o := *out
		if !flagPassed("out") {
			o = "BENCH_ibp.json"
		}
		runIBPSweep(n, w, *seed, o, *modelDir)
		return
	}

	if *platoonN >= 2 {
		o := *out
		if !flagPassed("out") {
			o = "BENCH_platoon.json"
		}
		runPlatoonMatrix(*platoonN, n, w, *seed, o)
		return
	}

	report := benchReport{
		GeneratedBy:         "cmd/bench",
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		EpisodesPerCampaign: n,
		BaseSeed:            *seed,
		Workers:             w,
	}
	if *batchSize > 1 {
		report.BatchSize = *batchSize
	}

	matrix := workloads.CanonicalMatrix(*quick)
	for i, wl := range matrix {
		spec := campaign.Spec{
			Name:            wl.Name,
			Episodes:        n,
			BaseSeed:        *seed,
			Workers:         w,
			BatchSize:       *batchSize,
			Invariants:      wl.Invariants(),
			CountViolations: true,
		}
		if *checkpoint != "" {
			spec.CheckpointPath = filepath.Join(*checkpoint, sanitize(wl.Name)+".json")
		}
		rep, err := runCampaign(spec, wl)
		if err != nil {
			log.Fatalf("campaign %s: %v", wl.Name, err)
		}
		log.Printf("%-28s %6d eps  %8.0f eps/s  safe %.4f [%.4f, %.4f]",
			wl.Name, rep.Stats.Episodes, rep.Perf.EpisodesPerSec,
			rep.Stats.SafeRate.Rate, rep.Stats.SafeRate.Lo, rep.Stats.SafeRate.Hi)
		report.Campaigns = append(report.Campaigns, rep)

		// Parallel-efficiency probe: rerun the first campaign single-worker.
		if i == 0 && w > 1 {
			spec.CheckpointPath = "" // never resume the probe
			spec.Workers = 1
			base, err := runWorkload(spec, wl)
			if err != nil {
				log.Fatalf("campaign %s (1 worker): %v", wl.Name, err)
			}
			report.Speedup = &speedup{
				Campaign:        wl.Name,
				Workers:         w,
				EpisodesPerSec1: base.Perf.EpisodesPerSec,
				EpisodesPerSecN: rep.Perf.EpisodesPerSec,
				Factor:          rep.Perf.EpisodesPerSec / base.Perf.EpisodesPerSec,
			}
			log.Printf("%-28s speedup %.2fx at %d workers", wl.Name, report.Speedup.Factor, w)
		}
	}

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if *out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(*out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d campaigns)", *out, len(report.Campaigns))
}

// runWorkload dispatches one left-turn workload to the scalar or the
// lockstep batched campaign engine, keyed on Spec.BatchSize.  Both
// produce bit-identical Stats (the batch parity suite asserts this);
// only the execution shape differs.
func runWorkload(spec campaign.Spec, wl workloads.Workload) (*campaign.Report, error) {
	if spec.BatchSize > 1 {
		return campaign.RunBatch(spec, wl.Batch())
	}
	return campaign.Run(spec, wl.Episode())
}

// runCampaign executes a spec, degrading gracefully when its checkpoint
// file is corrupt (truncated, bit-flipped, version-skewed): the file is
// discarded with a warning and the campaign restarts fresh.  A
// *fingerprint* mismatch still fails — that checkpoint belongs to a
// different campaign and discarding it would hide the caller's mistake.
func runCampaign(spec campaign.Spec, wl workloads.Workload) (*campaign.Report, error) {
	rep, err := runWorkload(spec, wl)
	if err != nil && spec.CheckpointPath != "" && errors.Is(err, campaign.ErrCorruptCheckpoint) {
		log.Printf("WARNING: %v — discarding and restarting fresh", err)
		if rmErr := os.Remove(spec.CheckpointPath); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, rmErr
		}
		rep, err = runWorkload(spec, wl)
	}
	return rep, err
}

// runSmoke is the CI safety gate: a clean (no-disturbance) and a disturbed
// (delayed) 10k-episode campaign with every checker in fail mode.  Any
// violation makes the campaign — and the process — fail, and the
// sound_violations counter must come back zero from both: the soundness
// contract holds with and without communication disturbance.
func runSmoke(workers int, seed int64) {
	settings := experiments.StandardSettings()
	for _, s := range []struct {
		label string
		idx   int
	}{
		{"clean", 0},   // no disturbance
		{"delayed", 1}, // messages delayed
	} {
		cfg := experiments.SettingConfig(settings[s.idx])
		cfg.InfoFilter = true
		// The aggressive planner exercises κ_e heavily, which is what the
		// emergency checkers are for.
		agent := core.NewUltimate(cfg.Scenario, planner.AggressiveExpert(cfg.Scenario))
		rep, err := campaign.Run(campaign.Spec{
			Name:       "smoke/" + s.label + "/ultimate-aggressive",
			Episodes:   10_000,
			BaseSeed:   seed,
			Workers:    workers,
			Invariants: workloads.InvariantSet(cfg),
		}, campaign.LeftTurn(cfg, agent))
		if err != nil {
			log.Fatalf("SMOKE FAILED (%s): %v", s.label, err)
		}
		if rep.Stats.SoundViolations != 0 {
			log.Fatalf("SMOKE FAILED (%s): %d sound-interval violations (must be 0)",
				s.label, rep.Stats.SoundViolations)
		}
		fmt.Printf("smoke OK (%s): %d episodes, safe %d/%d, %.0f eps/s, emergency episodes %d, sound violations 0\n",
			s.label, rep.Stats.Episodes, rep.Stats.Episodes-rep.Stats.Collided, rep.Stats.Episodes,
			rep.Perf.EpisodesPerSec, rep.Stats.EmergencyEpisodes)
	}
}

// guardBenchReport is the file layout of BENCH_guard.json: one guarded
// campaign per planner-fault preset.
type guardBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	EpisodesPerCampaign int   `json:"episodes_per_campaign"`
	BaseSeed            int64 `json:"base_seed"`
	Workers             int   `json:"workers"`

	Campaigns []*guardCampaignReport `json:"campaigns"`
}

// guardCampaignReport is one preset's row of the fault matrix.
type guardCampaignReport struct {
	Preset string `json:"preset"`
	// MeanEta is the efficiency score under contained faults — the cost
	// of degradation, to compare against the preset "none" baseline.
	MeanEta float64 `json:"mean_eta"`
	// CrashFreeRate is the fraction of episodes that completed without an
	// uncontained planner crash.  The guard recovers every injected
	// panic, so this must be 1 for every preset; an episode that
	// crashed would abort its campaign and the whole bench run.
	CrashFreeRate float64 `json:"crash_free_rate"`

	Report *campaign.Report `json:"report"`
}

// faultInvariantSet is the fail-mode checker set under planner faults.
// MonitorConsistency is absent by design: a guard-forced κ_e step
// diverges from the monitor's verdict — that divergence is the
// containment the remaining checkers assert.
func faultInvariantSet(cfg sim.Config) []sim.Invariant {
	return []sim.Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		sim.EmergencyOneStep{Cfg: cfg.Scenario},
		sim.NewGuardConsistency(cfg.Scenario),
	}
}

// runGuardMatrix runs one guarded campaign per planner-fault preset and
// writes BENCH_guard.json.  The containment invariants run in counting
// mode so the report doubles as a fault-tolerance audit: every
// invariant_violations counter must be zero and every crash_free_rate 1.
func runGuardMatrix(n, w int, seed int64, out, checkpoint string) {
	report := guardBenchReport{
		GeneratedBy:         "cmd/bench -guard",
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		EpisodesPerCampaign: n,
		BaseSeed:            seed,
		Workers:             w,
	}
	for _, preset := range faultinject.PresetNames() {
		m, err := faultinject.Preset(preset)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.InfoFilter = true
		cfg.PlannerFault = m
		gc := guard.DefaultConfig(cfg.Scenario.Ego)
		cfg.Guard = &gc
		agent := core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
		spec := campaign.Spec{
			Name:            "fault-" + preset + "/ultimate-conservative",
			Episodes:        n,
			BaseSeed:        seed,
			Workers:         w,
			Invariants:      faultInvariantSet(cfg),
			CountViolations: true,
		}
		if checkpoint != "" {
			spec.CheckpointPath = filepath.Join(checkpoint, sanitize(spec.Name)+".json")
		}
		rep, err := runCampaign(spec, workloads.Workload{Name: spec.Name, Cfg: cfg, Agent: agent})
		if err != nil {
			log.Fatalf("campaign %s: %v", spec.Name, err)
		}
		for name, v := range rep.Stats.InvariantViolations {
			if v != 0 {
				log.Fatalf("campaign %s: invariant %s violated %d times", spec.Name, name, v)
			}
		}
		row := &guardCampaignReport{
			Preset:        preset,
			MeanEta:       rep.Stats.Eta.Mean,
			CrashFreeRate: 1, // campaign.Run fails on any uncontained crash
			Report:        rep,
		}
		report.Campaigns = append(report.Campaigns, row)
		log.Printf("%-28s %6d eps  %8.0f eps/s  η %.4f  faults %d  fallback rate %.4f",
			spec.Name, rep.Stats.Episodes, rep.Perf.EpisodesPerSec,
			row.MeanEta, rep.Stats.GuardFaults, rep.Stats.GuardFallbackStepRate)
	}

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d fault campaigns)", out, len(report.Campaigns))
}

// runGuardSmoke is the guard's CI gate: the acceptance worst cases —
// half of all planner calls panicking, half returning NaN — over 10k
// episodes each, containment checkers in fail mode.  Any escaped panic,
// collision, burned κ_e slack, or malformed guard intervention fails the
// process.
func runGuardSmoke(workers int, seed int64) {
	cases := []struct {
		name  string
		model faultinject.Model
	}{
		{"panic-half", faultinject.PanicP{P: 0.5}},
		{"nan-half", faultinject.NaNOutput{P: 0.5}},
	}
	for _, c := range cases {
		cfg := sim.DefaultConfig()
		cfg.InfoFilter = true
		cfg.PlannerFault = c.model
		agent := core.NewUltimate(cfg.Scenario, planner.ConservativeExpert(cfg.Scenario))
		rep, err := campaign.Run(campaign.Spec{
			Name:       "guard-smoke/" + c.name,
			Episodes:   10_000,
			BaseSeed:   seed,
			Workers:    workers,
			Invariants: faultInvariantSet(cfg),
		}, campaign.LeftTurn(cfg, agent))
		if err != nil {
			log.Fatalf("GUARD SMOKE FAILED (%s): %v", c.name, err)
		}
		fmt.Printf("guard smoke OK (%s): %d episodes, safe %d/%d, %d contained faults, %.0f eps/s\n",
			c.name, rep.Stats.Episodes, rep.Stats.Episodes-rep.Stats.Collided,
			rep.Stats.Episodes, rep.Stats.GuardFaults, rep.Perf.EpisodesPerSec)
	}
}

// runDistWorker joins a campaignd coordinator as a distributed-campaign
// worker: lease shards, run episodes through the workload registry,
// submit byte-identical aggregates, exit when the campaign completes or
// the coordinator drains.  Workload resolution goes through the same
// registry the local matrix uses, which is the whole point: identical
// construction on both sides keeps remote episodes byte-identical to
// local ones.
func runDistWorker(addr, id, checkpoint string, killAfter int) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	log.Printf("worker %s joining coordinator at %s", id, addr)
	cfg := dist.WorkerConfig{
		ID:   id,
		Dial: func() (dist.Conn, error) { return dist.DialTCP(addr) },
		Resolve: func(name string) (campaign.EpisodeFunc, []sim.Invariant, error) {
			wl, err := workloads.Lookup(name)
			if err != nil {
				return nil, nil, err
			}
			return wl.Episode(), wl.Invariants(), nil
		},
		CheckpointPath: checkpoint,
	}
	if killAfter > 0 {
		// os.Exit skips deferred cleanup and the pending lease release —
		// deliberately: the gate wants a real abrupt death, with whatever
		// mid-shard checkpoint happens to be on disk and a dangling lease
		// the coordinator must expire.
		ran := 0
		cfg.AfterEpisode = func(shard, next int) error {
			if ran++; ran >= killAfter {
				log.Printf("worker %s: hard-exiting after %d episodes (shard %d) — dist-smoke crash seam", id, ran, shard)
				os.Exit(137)
			}
			return nil
		}
	}
	sum, err := dist.RunWorker(cfg)
	log.Printf("worker %s: %d shards completed, %d episodes run, %d transport retries, %d leases lost, resumed=%v",
		id, sum.ShardsCompleted, sum.EpisodesRun, sum.Retries, sum.LeasesLost, sum.Resumed)
	if err != nil {
		log.Fatalf("worker %s: %v", id, err)
	}
}

// sanitize maps a campaign name onto a filename.
func sanitize(name string) string {
	return strings.NewReplacer("/", "-", " ", "_").Replace(name)
}

// flagPassed reports whether the named flag was set explicitly.
func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}
