package main

import (
	"encoding/json"
	"log"
	"os"
	"runtime"
	"sync"

	"safeplan/internal/campaign"
	"safeplan/internal/core"
	"safeplan/internal/experiments"
	"safeplan/internal/nn/ibp"
	"safeplan/internal/planner"
	"safeplan/internal/sim"
)

// ibpBenchReport is the file layout of BENCH_ibp.json: the offline
// certification sweep — every trained-NN design on the clean canonical
// scenario, each episode's executed κ_n commands cross-checked against
// the IBP certified range.
type ibpBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	EpisodesPerCampaign int   `json:"episodes_per_campaign"`
	BaseSeed            int64 `json:"base_seed"`
	Workers             int   `json:"workers"`

	Campaigns []*ibpCampaignReport `json:"campaigns"`
}

// ibpCampaignReport is one design's row of the certification sweep.
type ibpCampaignReport struct {
	Design string `json:"design"`
	// CertifiedSteps counts executed κ_n commands checked against the
	// certified range; CertifiedRangeMisses must be 0 — the sweep fails
	// otherwise (the certified range is sound, so a miss is a wiring or
	// soundness bug, never expected behaviour).
	CertifiedSteps       int64 `json:"certified_steps"`
	CertifiedRangeMisses int64 `json:"certified_range_misses"`

	Report *campaign.Report `json:"report"`
}

// ibpWorkload is one certification campaign: a verified-mode config plus
// a per-worker agent factory (NN planners carry per-call scratch and
// network caches, so unlike the expert planners they cannot be shared
// across campaign workers).
type ibpWorkload struct {
	name     string
	cfg      sim.Config
	newAgent func() core.Agent
}

// pooledEpisodes adapts a workload to an EpisodeFunc that draws a
// per-worker agent from a sync.Pool.  Agents are built from cloned
// networks with identical weights, so the campaign stats stay
// byte-identical at any worker count.
func pooledEpisodes(wl ibpWorkload) campaign.EpisodeFunc {
	pool := &sync.Pool{New: func() any { return wl.newAgent() }}
	return func(opts sim.Options) (sim.Result, error) {
		ag := pool.Get().(core.Agent)
		defer pool.Put(ag)
		return sim.Run(wl.cfg, ag, opts)
	}
}

// clonePlanner returns an independent copy of an NN planner: deep-copied
// network (fresh forward caches), shared read-only normalizer.
func clonePlanner(p *planner.NNPlanner) *planner.NNPlanner {
	return &planner.NNPlanner{Label: p.Label, Net: p.Net.Clone(), Norm: p.Norm, Limits: p.Limits}
}

// runIBPSweep is the -ibp mode: the offline certification sweep over the
// scenario state space, reusing the sharded campaign engine.  It loads
// the committed NN planners, builds one propagator per model, runs each
// design's campaign in verified mode, asserts zero certified-range
// misses, and writes BENCH_ibp.json.
func runIBPSweep(n, w int, seed int64, out, modelDir string) {
	base := sim.DefaultConfig()
	pl, err := experiments.LoadPlanners(modelDir, base.Scenario)
	if err != nil {
		log.Fatalf("load planners from %s: %v", modelDir, err)
	}
	cons := pl.Cons.(*planner.NNPlanner)
	aggr := pl.Aggr.(*planner.NNPlanner)
	consProp, err := ibp.New(cons.Net, cons.Norm)
	if err != nil {
		log.Fatalf("propagator (cons): %v", err)
	}
	aggrProp, err := ibp.New(aggr.Net, aggr.Norm)
	if err != nil {
		log.Fatalf("propagator (aggr): %v", err)
	}

	mk := func(name string, prop *ibp.Propagator, newAgent func() core.Agent) ibpWorkload {
		cfg := sim.DefaultConfig()
		cfg.InfoFilter = true
		cfg.Certify = &sim.CertifyConfig{Prop: prop}
		return ibpWorkload{name: name, cfg: cfg, newAgent: newAgent}
	}
	sc := base.Scenario
	workloads := []ibpWorkload{
		mk("certify/pure-nn-cons", consProp, func() core.Agent {
			return &core.PureNN{Cfg: sc, Planner: clonePlanner(cons)}
		}),
		mk("certify/basic-nn-cons", consProp, func() core.Agent {
			return core.NewBasic(sc, clonePlanner(cons))
		}),
		mk("certify/ultimate-nn-cons", consProp, func() core.Agent {
			return core.NewUltimate(sc, clonePlanner(cons))
		}),
		mk("certify/ultimate-nn-aggr", aggrProp, func() core.Agent {
			return core.NewUltimate(sc, clonePlanner(aggr))
		}),
	}

	report := ibpBenchReport{
		GeneratedBy:         "cmd/bench -ibp",
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		NumCPU:              runtime.NumCPU(),
		EpisodesPerCampaign: n,
		BaseSeed:            seed,
		Workers:             w,
	}
	for _, wl := range workloads {
		// NoCollision stays out of the set: the pure NN baseline has no
		// safety guarantee by design, and this sweep audits certification,
		// not safety.  SoundEstimate still runs — certification rests on it.
		spec := campaign.Spec{
			Name:            wl.name,
			Episodes:        n,
			BaseSeed:        seed,
			Workers:         w,
			Invariants:      []sim.Invariant{sim.SoundEstimate{}},
			CountViolations: true,
		}
		rep, err := campaign.Run(spec, pooledEpisodes(wl))
		if err != nil {
			log.Fatalf("campaign %s: %v", wl.name, err)
		}
		if rep.Stats.CertifiedSteps == 0 {
			log.Fatalf("campaign %s: no step was certified — verified mode never armed", wl.name)
		}
		if rep.Stats.CertifiedRangeMisses != 0 {
			log.Fatalf("campaign %s: %d certified-range misses over %d certified steps (must be 0)",
				wl.name, rep.Stats.CertifiedRangeMisses, rep.Stats.CertifiedSteps)
		}
		for name, v := range rep.Stats.InvariantViolations {
			if v != 0 {
				log.Fatalf("campaign %s: invariant %s violated %d times", wl.name, name, v)
			}
		}
		report.Campaigns = append(report.Campaigns, &ibpCampaignReport{
			Design:               wl.name,
			CertifiedSteps:       rep.Stats.CertifiedSteps,
			CertifiedRangeMisses: rep.Stats.CertifiedRangeMisses,
			Report:               rep,
		})
		log.Printf("%-28s %6d eps  %8.0f eps/s  certified %d steps, 0 misses",
			wl.name, rep.Stats.Episodes, rep.Perf.EpisodesPerSec, rep.Stats.CertifiedSteps)
	}

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d certification campaigns)", out, len(report.Campaigns))
}
