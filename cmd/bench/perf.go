package main

import (
	"encoding/json"
	"log"
	"os"
	"runtime"
	"testing"

	"safeplan/internal/campaign"
	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/experiments"
	"safeplan/internal/platoon"
	"safeplan/internal/sim"
	"safeplan/internal/sim/batch"
)

// perfReport is the file layout of BENCH_perf.json: the allocation and
// latency matrix behind the zero-allocation stepping work.  Every row
// measures one scenario's episode runner twice — without a scratch arena
// (the legacy allocate-per-episode path) and with one (the campaign
// engine's pooled path) — so the before/after columns document exactly
// what the arena buys and regressions show up as a shrinking factor.
type perfReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	BaseSeed    int64  `json:"base_seed"`

	Rows []perfRow `json:"rows"`

	// Batch compares the lockstep SoA engine (internal/sim/batch) against
	// the scalar left-turn stepping path at several lane widths.
	Batch *batchPerfBlock `json:"batch"`
}

// perfSample is one measured configuration (scratch off or on).  An "op"
// is one full episode.
type perfSample struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerStep   float64 `json:"ns_per_step"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// perfRow is one scenario of the matrix with its before/after samples and
// the reduction factors (before ÷ after; higher is better).
type perfRow struct {
	Name   string     `json:"name"`
	Before perfSample `json:"before"` // no scratch: legacy allocate-per-episode
	After  perfSample `json:"after"`  // reused scratch arena (campaign path)

	AllocReduction float64 `json:"alloc_reduction"`
	BytesReduction float64 `json:"bytes_reduction"`
}

// perfSeedCycle rotates episode seeds inside a measurement so the numbers
// average over episode shapes instead of timing one seed's trajectory.
const perfSeedCycle = 16

// runPerfMatrix measures the three episode runners with and without a
// scratch arena and writes the comparison to out.
func runPerfMatrix(seed int64, out string) {
	report := perfReport{
		GeneratedBy: "cmd/bench -perf",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BaseSeed:    seed,
	}
	for _, w := range perfWorkloads() {
		row := perfRow{Name: w.name}
		row.Before = measureEpisodes(w.run, nil, seed)
		row.After = measureEpisodes(w.run, sim.NewScratch(), seed)
		if row.After.AllocsPerOp > 0 {
			row.AllocReduction = float64(row.Before.AllocsPerOp) / float64(row.After.AllocsPerOp)
		}
		if row.After.BytesPerOp > 0 {
			row.BytesReduction = float64(row.Before.BytesPerOp) / float64(row.After.BytesPerOp)
		}
		report.Rows = append(report.Rows, row)
		log.Printf("%-24s before %7d allocs/op %9d B/op   after %5d allocs/op %7d B/op   (%.0fx / %.0fx)",
			w.name, row.Before.AllocsPerOp, row.Before.BytesPerOp,
			row.After.AllocsPerOp, row.After.BytesPerOp,
			row.AllocReduction, row.BytesReduction)
	}
	report.Batch = measureBatchMatrix(seed)

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", out, len(report.Rows))
}

// perfBatchSizes are the lane widths measured by the batch block.  Width 1
// documents the lockstep engine's bookkeeping floor relative to the scalar
// stepper.  The scalar engine now batch-seeds its own derived streams
// (the win that used to dominate this comparison), so widths ≥ 8 sit
// near parity with the scalar baseline rather than ~1.3× ahead; the
// block remains the regression watch on lockstep overhead.  Every width
// must divide batchPoolEpisodes so all rows cover the identical episode
// pool.
var perfBatchSizes = []int{1, 8, 64}

// batchPoolEpisodes is the fixed seed pool every batch row — and the
// scalar baseline — steps per benchmark op.  Pinning the pool makes the
// comparison apples-to-apples: every row simulates the exact same
// episodes (the batch engine is byte-identical to the scalar one), so
// the ns/step ratio isolates engine overhead from episode mix.
const batchPoolEpisodes = 64

// batchPerfBlock is the batch section of BENCH_perf.json: the scalar
// left-turn baseline re-measured over the shared pool (scratch arena on)
// and one row per lane width.  Results are byte-identical to the scalar
// engine at every width — the parity suite gates that — so this block is
// purely a throughput comparison.
type batchPerfBlock struct {
	Scenario        string            `json:"scenario"`
	PoolEpisodes    int               `json:"pool_episodes"`
	ScalarNsPerStep float64           `json:"scalar_ns_per_step"`
	Sizes           []batchPerfSample `json:"sizes"`
}

// batchPerfSample is one lane width's measurement.  An "op" is one pass
// over the whole pool; the per-episode columns cover the full episode —
// engine construction, stepping, and finalization — and divide by the
// pool size.  Whole-episode timing matters: construction is dominated by
// math/rand stream seeding, which the batch engine pipelines across lanes
// (internal/xrand.SeedMany) while the scalar loop must pay serially, and
// that structural difference is part of what the batch rows measure.
type batchPerfSample struct {
	Size             int     `json:"size"`
	Iterations       int     `json:"iterations"`
	NsPerEpisode     float64 `json:"ns_per_episode"`
	NsPerStep        float64 `json:"ns_per_step"`
	BytesPerEpisode  float64 `json:"bytes_per_episode"`
	AllocsPerEpisode float64 `json:"allocs_per_episode"`
	// SpeedupVsScalar is scalar ns/step ÷ batched ns/step (> 1: the batch
	// engine steps faster per simulated step than the scalar engine).
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
}

// batchPoolRepeats is how many times each pool configuration is measured.
// The repeats are *interleaved* — scalar, width 1, width 8, width 64,
// then again — and the fastest repeat per configuration is kept (the
// minimum is the least scheduler-disturbed estimate, and interleaving
// keeps slow machine drift from biasing whichever configuration happened
// to run last).  Applied identically to the scalar baseline and every
// batch width, so the comparison stays fair.
const batchPoolRepeats = 5

// measureBatchMatrix measures the batched left-turn engine at every lane
// width over the shared episode pool, against a scalar pass over the
// same pool.
func measureBatchMatrix(seed int64) *batchPerfBlock {
	cfg, agent := leftTurnPerfWorkload()
	seeds := make([]int64, batchPoolEpisodes)
	for i := range seeds {
		seeds[i] = seed + int64(i)
	}
	// Both closures time the whole episode, construction included: stream
	// seeding is over half of episode wall time, and batching it across
	// lanes is a structural advantage of the lockstep engine that the
	// comparison is meant to expose, not hide.
	scalarRun := func(sh *sim.Scratch, group []int64) (int64, error) {
		var steps int64
		for _, s := range group {
			st, err := sim.NewStepper(cfg, agent, sim.Options{Seed: s, Scratch: sh})
			if err != nil {
				return 0, err
			}
			for !st.Done() {
				if _, err := st.Step(sim.StepInput{}); err != nil {
					return 0, err
				}
			}
			r, err := st.Finish()
			if err != nil {
				return 0, err
			}
			steps += int64(r.Steps)
		}
		return steps, nil
	}
	batchRun := func(sh *sim.Scratch, group []int64) (int64, error) {
		bs, err := batch.New(cfg, agent, group, sim.Options{Scratch: sh})
		if err != nil {
			return 0, err
		}
		for !bs.Done() {
			bs.Step()
		}
		rs, err := bs.Finish()
		if err != nil {
			return 0, err
		}
		var steps int64
		for k := range rs {
			steps += int64(rs[k].Steps)
		}
		return steps, nil
	}

	// Row 0 is the scalar baseline (group size = whole pool); the rest are
	// the batch widths.  One scratch arena per row, reused across repeats.
	rows := make([]batchPerfSample, 1+len(perfBatchSizes))
	arenas := make([]*sim.Scratch, len(rows))
	for i := range arenas {
		arenas[i] = sim.NewScratch()
	}
	for rep := 0; rep < batchPoolRepeats; rep++ {
		for i := range rows {
			run, size := scalarRun, len(seeds)
			if i > 0 {
				run, size = batchRun, perfBatchSizes[i-1]
			}
			s := measurePool(seeds, arenas[i], run, size)
			if rep == 0 || s.NsPerStep < rows[i].NsPerStep {
				rows[i] = s
			}
		}
	}

	block := &batchPerfBlock{
		Scenario:        "left-turn",
		PoolEpisodes:    batchPoolEpisodes,
		ScalarNsPerStep: rows[0].NsPerStep,
	}
	log.Printf("batch scalar-baseline %9.0f ns/episode  %7.1f ns/step over %d-episode pool",
		rows[0].NsPerEpisode, rows[0].NsPerStep, batchPoolEpisodes)
	for i, size := range perfBatchSizes {
		s := rows[1+i]
		s.Size = size
		if s.NsPerStep > 0 {
			s.SpeedupVsScalar = block.ScalarNsPerStep / s.NsPerStep
		}
		block.Sizes = append(block.Sizes, s)
		log.Printf("batch %-3d %9.0f ns/episode  %7.1f ns/step  %6.2f allocs/episode  (%.2fx vs scalar)",
			s.Size, s.NsPerEpisode, s.NsPerStep, s.AllocsPerEpisode, s.SpeedupVsScalar)
	}
	return block
}

// measurePool benchmarks one pass over the pool in groups of size lanes.
// The scratch arena is reused across iterations, mirroring how a campaign
// shard drives the engines.
func measurePool(seeds []int64, sh *sim.Scratch, runGroup func(*sim.Scratch, []int64) (int64, error), size int) batchPerfSample {
	var steps int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		steps = 0
		for i := 0; i < b.N; i++ {
			for lo := 0; lo < len(seeds); lo += size {
				n, err := runGroup(sh, seeds[lo:min(lo+size, len(seeds))])
				if err != nil {
					b.Fatal(err)
				}
				steps += n
			}
		}
	})
	pool := float64(len(seeds))
	s := batchPerfSample{
		Iterations:       res.N,
		NsPerEpisode:     float64(res.NsPerOp()) / pool,
		BytesPerEpisode:  float64(res.AllocedBytesPerOp()) / pool,
		AllocsPerEpisode: float64(res.AllocsPerOp()) / pool,
	}
	if steps > 0 {
		s.NsPerStep = float64(res.T.Nanoseconds()) / float64(steps)
	}
	return s
}

// perfWorkload is one scenario of the perf matrix.
type perfWorkload struct {
	name string
	run  func(opts sim.Options) (sim.Result, error)
}

// leftTurnPerfWorkload is the left-turn scenario of the matrix: delayed
// comms with the information filter on (the heaviest steady-state stack).
// The batch block measures the same workload so its speedup column is
// apples-to-apples against the scalar left-turn row.
func leftTurnPerfWorkload() (sim.Config, core.Agent) {
	cfg := sim.DefaultConfig()
	cfg.Comms = comms.Delayed(0.25, 0.5)
	cfg.InfoFilter = true
	return cfg, core.NewUltimate(cfg.Scenario, experiments.ExpertPlanners(cfg.Scenario).Cons)
}

// perfWorkloads builds the matrix: one episode runner per scenario, all
// under the delayed-comms setting with the information filter on (the
// heaviest steady-state stack: Kalman replay, fusion, compound monitor).
func perfWorkloads() []perfWorkload {
	ltCfg, ltAgent := leftTurnPerfWorkload()

	multiCfg := sim.DefaultMultiConfig()
	multiCfg.Comms = comms.Delayed(0.25, 0.5)
	multiCfg.InfoFilter = true
	multiAgent := core.NewMultiUltimate(multiCfg.Scenario, experiments.ExpertPlanners(multiCfg.Scenario).Cons)

	cfCfg := carfollow.DefaultSimConfig()
	cfCfg.Comms = comms.Delayed(0.25, 0.5)
	cfCfg.InfoFilter = true
	cfAgent := carfollow.NewUltimate(cfCfg.Scenario, carfollow.AggressiveExpert(cfCfg.Scenario))

	// The platoon row runs through the scalar stepping engine only: the
	// lockstep SoA batch engine is a fixed-layout left-turn twin, and the
	// chain's state dimension varies with N, so a batched platoon engine
	// is deliberately deferred (see DESIGN.md §17).
	plCfg := platoon.DefaultSimConfig()
	plCfg.Comms = comms.Delayed(0.25, 0.5)
	plCfg.InfoFilter = true
	plAgent := carfollow.NewUltimate(plCfg.Scenario, carfollow.AggressiveExpert(plCfg.Scenario))

	return []perfWorkload{
		{"left-turn", func(opts sim.Options) (sim.Result, error) { return sim.Run(ltCfg, ltAgent, opts) }},
		{"multi-vehicle", func(opts sim.Options) (sim.Result, error) { return sim.RunMulti(multiCfg, multiAgent, opts) }},
		{"car-follow", func(opts sim.Options) (sim.Result, error) { return carfollow.RunEpisode(cfCfg, cfAgent, opts) }},
		{"platoon-4", func(opts sim.Options) (sim.Result, error) { return platoon.RunEpisode(plCfg, plAgent, opts) }},
	}
}

// measureEpisodes benchmarks one episode runner with the given (possibly
// nil) scratch arena.  The arena is reused across iterations, exactly as a
// campaign shard reuses it across its episodes.
func measureEpisodes(run func(sim.Options) (sim.Result, error), sh *sim.Scratch, seed int64) perfSample {
	var steps int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		steps = 0
		for i := 0; i < b.N; i++ {
			r, err := run(sim.Options{Seed: seed + int64(i%perfSeedCycle), Scratch: sh})
			if err != nil {
				b.Fatal(err)
			}
			steps += int64(r.Steps)
		}
	})
	s := perfSample{
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if steps > 0 {
		s.NsPerStep = float64(res.T.Nanoseconds()) / float64(steps)
	}
	return s
}
