package main

import (
	"encoding/json"
	"log"
	"os"
	"runtime"
	"testing"

	"safeplan/internal/campaign"
	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/experiments"
	"safeplan/internal/sim"
)

// perfReport is the file layout of BENCH_perf.json: the allocation and
// latency matrix behind the zero-allocation stepping work.  Every row
// measures one scenario's episode runner twice — without a scratch arena
// (the legacy allocate-per-episode path) and with one (the campaign
// engine's pooled path) — so the before/after columns document exactly
// what the arena buys and regressions show up as a shrinking factor.
type perfReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	BaseSeed    int64  `json:"base_seed"`

	Rows []perfRow `json:"rows"`
}

// perfSample is one measured configuration (scratch off or on).  An "op"
// is one full episode.
type perfSample struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerStep   float64 `json:"ns_per_step"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// perfRow is one scenario of the matrix with its before/after samples and
// the reduction factors (before ÷ after; higher is better).
type perfRow struct {
	Name   string     `json:"name"`
	Before perfSample `json:"before"` // no scratch: legacy allocate-per-episode
	After  perfSample `json:"after"`  // reused scratch arena (campaign path)

	AllocReduction float64 `json:"alloc_reduction"`
	BytesReduction float64 `json:"bytes_reduction"`
}

// perfSeedCycle rotates episode seeds inside a measurement so the numbers
// average over episode shapes instead of timing one seed's trajectory.
const perfSeedCycle = 16

// runPerfMatrix measures the three episode runners with and without a
// scratch arena and writes the comparison to out.
func runPerfMatrix(seed int64, out string) {
	report := perfReport{
		GeneratedBy: "cmd/bench -perf",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BaseSeed:    seed,
	}
	for _, w := range perfWorkloads() {
		row := perfRow{Name: w.name}
		row.Before = measureEpisodes(w.run, nil, seed)
		row.After = measureEpisodes(w.run, sim.NewScratch(), seed)
		if row.After.AllocsPerOp > 0 {
			row.AllocReduction = float64(row.Before.AllocsPerOp) / float64(row.After.AllocsPerOp)
		}
		if row.After.BytesPerOp > 0 {
			row.BytesReduction = float64(row.Before.BytesPerOp) / float64(row.After.BytesPerOp)
		}
		report.Rows = append(report.Rows, row)
		log.Printf("%-24s before %7d allocs/op %9d B/op   after %5d allocs/op %7d B/op   (%.0fx / %.0fx)",
			w.name, row.Before.AllocsPerOp, row.Before.BytesPerOp,
			row.After.AllocsPerOp, row.After.BytesPerOp,
			row.AllocReduction, row.BytesReduction)
	}

	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if out == "-" {
		os.Stdout.Write(raw)
		return
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", out, len(report.Rows))
}

// perfWorkload is one scenario of the perf matrix.
type perfWorkload struct {
	name string
	run  func(opts sim.Options) (sim.Result, error)
}

// perfWorkloads builds the matrix: one episode runner per scenario, all
// under the delayed-comms setting with the information filter on (the
// heaviest steady-state stack: Kalman replay, fusion, compound monitor).
func perfWorkloads() []perfWorkload {
	ltCfg := sim.DefaultConfig()
	ltCfg.Comms = comms.Delayed(0.25, 0.5)
	ltCfg.InfoFilter = true
	ltAgent := core.NewUltimate(ltCfg.Scenario, experiments.ExpertPlanners(ltCfg.Scenario).Cons)

	multiCfg := sim.DefaultMultiConfig()
	multiCfg.Comms = comms.Delayed(0.25, 0.5)
	multiCfg.InfoFilter = true
	multiAgent := core.NewMultiUltimate(multiCfg.Scenario, experiments.ExpertPlanners(multiCfg.Scenario).Cons)

	cfCfg := carfollow.DefaultSimConfig()
	cfCfg.Comms = comms.Delayed(0.25, 0.5)
	cfCfg.InfoFilter = true
	cfAgent := carfollow.NewUltimate(cfCfg.Scenario, carfollow.AggressiveExpert(cfCfg.Scenario))

	return []perfWorkload{
		{"left-turn", func(opts sim.Options) (sim.Result, error) { return sim.Run(ltCfg, ltAgent, opts) }},
		{"multi-vehicle", func(opts sim.Options) (sim.Result, error) { return sim.RunMulti(multiCfg, multiAgent, opts) }},
		{"car-follow", func(opts sim.Options) (sim.Result, error) { return carfollow.RunEpisode(cfCfg, cfAgent, opts) }},
	}
}

// measureEpisodes benchmarks one episode runner with the given (possibly
// nil) scratch arena.  The arena is reused across iterations, exactly as a
// campaign shard reuses it across its episodes.
func measureEpisodes(run func(sim.Options) (sim.Result, error), sh *sim.Scratch, seed int64) perfSample {
	var steps int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		steps = 0
		for i := 0; i < b.N; i++ {
			r, err := run(sim.Options{Seed: seed + int64(i%perfSeedCycle), Scratch: sh})
			if err != nil {
				b.Fatal(err)
			}
			steps += int64(r.Steps)
		}
	})
	s := perfSample{
		Iterations:  res.N,
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if steps > 0 {
		s.NsPerStep = float64(res.T.Nanoseconds()) / float64(steps)
	}
	return s
}
