// Command campaignd is the distributed-campaign coordinator daemon: it
// owns one campaign.Spec's fixed shard plan and hands shards to bench
// -worker processes under time-bounded leases over a line-delimited JSON
// TCP protocol (internal/dist).  Results fold with the ordered merge, so
// the final statistics are byte-identical to a single-process `bench`
// run of the same workload — at any worker count, through worker
// crashes, lost messages, and restarts.
//
// Usage:
//
//	campaignd -workload no/ultimate-conservative -episodes 5000 -seed 42 \
//	          [-addr :7450] [-http :7451] [-checkpoint dist.ckpt.json] \
//	          [-lease-ttl 10s] [-out DIST_campaign.json]
//	campaignd -list
//
// Workers join with:
//
//	bench -worker 127.0.0.1:7450 [-worker-checkpoint worker1.ckpt.json]
//
// On SIGTERM/SIGINT the daemon drains: no new leases are granted,
// in-flight shard results are still accepted, and once the last lease
// resolves it exits 3 with the checkpoint on disk — a later campaignd
// (or single-process bench resume) picks up exactly where it stopped.
// On completion it writes the final report (stats + fault-tolerance
// counters) atomically to -out and exits 0.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safeplan/internal/campaign"
	"safeplan/internal/dist"
	"safeplan/internal/workloads"
)

// distReport is the file layout of the -out report: the campaign
// descriptor, the byte-identical folded statistics, and the coordinator's
// fault-tolerance telemetry (observability only — no counter feeds the
// fold).
type distReport struct {
	GeneratedBy string            `json:"generated_by"`
	Campaign    dist.CampaignInfo `json:"campaign"`
	Stats       *campaign.Stats   `json:"stats,omitempty"`
	Counters    dist.Counters     `json:"counters"`
	Wall        float64           `json:"wall_seconds"`
	Workload    string            `json:"workload"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campaignd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7450", "worker-protocol TCP listen address")
		httpAddr = flag.String("http", "", "HTTP listen address for /metrics and /healthz (empty disables)")
		workload = flag.String("workload", "", "workload name from the canonical registry (see -list)")
		episodes = flag.Int("episodes", 5000, "episodes in the campaign")
		seed     = flag.Int64("seed", 42, "base seed (episode i runs with seed base+i)")
		shards   = flag.Int("shards", 0, "shard count (0: the engine's fixed default)")
		ckpt     = flag.String("checkpoint", "", "coordinator checkpoint file (campaign format; enables resume and drain handoff)")
		ckEvery  = flag.Int("checkpoint-every", 0, "accepted shards per checkpoint write (0: every shard)")
		leaseTTL = flag.Duration("lease-ttl", dist.DefaultLeaseTTL, "lease TTL: silent workers lose their shard after this")
		retry    = flag.Duration("retry-after", dist.DefaultRetryAfter, "wait hint handed to workers when every shard is leased")
		linger   = flag.Duration("linger", 2*time.Second, "after completion, keep serving so straggling workers learn the campaign is done and exit cleanly (0 exits immediately)")
		out      = flag.String("out", "DIST_campaign.json", "final report path (- for stdout)")
		statsOut = flag.String("stats-out", "", "also write ONLY the folded campaign.Stats JSON here (the dist-smoke byte-identity probe)")
		local    = flag.Bool("local", false, "run the campaign in-process through campaign.Run instead of serving workers — the byte-identity baseline")
		list     = flag.Bool("list", false, "list registered workload names and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			fmt.Println(name)
		}
		return
	}
	if *workload == "" {
		log.Fatal("missing -workload (see -list for registered names)")
	}
	// Validate the name now, against the same registry workers use: a typo
	// should fail here, not as unknown-workload on every joining worker.
	wl, err := workloads.Lookup(*workload)
	if err != nil {
		log.Fatal(err)
	}

	spec := campaign.Spec{
		Name:            wl.Name,
		Episodes:        *episodes,
		BaseSeed:        *seed,
		Shards:          *shards,
		Invariants:      wl.Invariants(),
		CountViolations: true,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckEvery,
	}

	if *local {
		// Baseline mode: the exact campaign the distributed tier would
		// serve, computed in this process by campaign.Run.  dist-smoke
		// byte-compares this run's stats against a chaotic multi-worker
		// run — they must be identical.
		start := time.Now()
		rep, err := campaign.Run(spec, wl.Episode())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("local: %d episodes in %.1fs  safe %.4f", rep.Stats.Episodes, time.Since(start).Seconds(), rep.Stats.SafeRate.Rate)
		if err := writeStats(*statsOut, rep.Stats); err != nil {
			log.Fatal(err)
		}
		return
	}

	coord, err := dist.NewCoordinator(dist.Config{
		Spec:       spec,
		Workload:   wl.Name,
		LeaseTTL:   *leaseTTL,
		RetryAfter: *retry,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := dist.NewServer(coord)
	defer srv.Close()

	if *httpAddr != "" {
		go func() {
			log.Printf("serving /metrics and /healthz on %s", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, srv); err != nil {
				log.Fatalf("http: %v", err)
			}
		}()
	}

	// First signal drains: admissions stop, in-flight shards finish, the
	// checkpoint survives for a later resume.  A second signal force-kills
	// through the default disposition.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		log.Printf("%s: draining (in-flight shards finish, no new leases; signal again to force-quit)", sig)
		coord.Drain()
		signal.Stop(sigs)
	}()

	start := time.Now()
	info := coord.Info()
	log.Printf("campaign %q: %d episodes over %d shards, lease TTL %s, listening on %s",
		info.Name, info.Episodes, info.Shards, *leaseTTL, *addr)
	if resumed := coord.Counters().ResumedShards; resumed > 0 {
		log.Printf("resumed %d/%d shards from %s", resumed, info.Shards, *ckpt)
	}

	go func() {
		if err := srv.ListenAndServe(*addr); err != nil {
			log.Fatalf("serve: %v", err)
		}
	}()

	stats, waitErr := coord.WaitResult()
	wall := time.Since(start)
	ctr := coord.Counters()
	report := distReport{
		GeneratedBy: "cmd/campaignd",
		Campaign:    info,
		Counters:    ctr,
		Wall:        wall.Seconds(),
		Workload:    wl.Name,
	}
	switch {
	case waitErr == nil:
		report.Stats = &stats
		log.Printf("complete: %d episodes in %.1fs  safe %.4f [%.4f, %.4f]  workers %d  reassignments %d  late %d  duplicates %d",
			stats.Episodes, wall.Seconds(),
			stats.SafeRate.Rate, stats.SafeRate.Lo, stats.SafeRate.Hi,
			ctr.WorkersSeen, ctr.Reassignments, ctr.ResultsLate, ctr.ResultsDuplicate)
		if err := writeReport(*out, report); err != nil {
			log.Fatal(err)
		}
		if err := writeStats(*statsOut, stats); err != nil {
			log.Fatal(err)
		}
		// Linger: the last shard's submitter learned of completion in its
		// result ack, but other workers discover it on their NEXT lease
		// request — exiting now would turn that request into a confusing
		// connection-refused retry storm.  Keep answering "done" briefly so
		// stragglers depart cleanly.
		if *linger > 0 {
			time.Sleep(*linger)
		}
	case errors.Is(waitErr, dist.ErrDraining):
		log.Printf("drained: %d/%d shards done in %.1fs; checkpoint preserved for resume", ctr.ShardsDone, ctr.ShardsTotal, wall.Seconds())
		srv.Close()
		os.Exit(3)
	default:
		log.Printf("FAILED: %v", waitErr)
		srv.Close()
		os.Exit(1)
	}
}

// writeStats persists just the folded statistics — the byte-identity
// probe: a distributed run and a -local run of the same campaign must
// produce files that compare equal with cmp(1).
func writeStats(path string, stats campaign.Stats) error {
	if path == "" {
		return nil
	}
	raw, err := json.MarshalIndent(stats, "", " ")
	if err != nil {
		return err
	}
	return campaign.WriteFileAtomic(path, append(raw, '\n'))
}

// writeReport persists the final report atomically (or to stdout).
func writeReport(out string, report distReport) error {
	raw, err := json.MarshalIndent(report, "", " ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := campaign.WriteFileAtomic(out, raw); err != nil {
		return err
	}
	log.Printf("wrote %s", out)
	return nil
}
