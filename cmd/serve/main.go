// Command serve hosts the compound planner as a long-running streaming
// daemon: many concurrent vehicle sessions, each a resumable episode
// engine fed line-delimited JSON requests over TCP, with live telemetry
// on an HTTP /metrics + /healthz endpoint.
//
// Daemon:
//
//	serve -addr :7355 -http :7356 -shards 8 -max-sessions 100000 -idle-timeout 60s
//
// Protocol (one JSON object per line; see internal/serve):
//
//	{"op":"open","sid":"car-1","scenario":"leftturn","design":"ultimate","planner":"cons","seed":7}
//	{"op":"step","sid":"car-1","steps":10}
//	{"op":"close","sid":"car-1"}
//
// Load generator (against a running daemon, or -self to host one
// in-process):
//
//	serve -loadgen -self -sessions 10000 -conns 32 -batch 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"safeplan/internal/serve"
	"safeplan/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7355", "session-protocol TCP listen address (daemon) or target (loadgen)")
		httpAddr = flag.String("http", "", "HTTP listen address for /metrics and /healthz (daemon; empty disables)")
		shards   = flag.Int("shards", 0, "session worker shards (0 = GOMAXPROCS)")
		maxSess  = flag.Int("max-sessions", 0, "admission-control session cap (0 = default)")
		mailbox  = flag.Int("mailbox", 0, "per-session mailbox bound (0 = default)")
		idle     = flag.Duration("idle-timeout", time.Minute, "idle-session reap timeout (0 disables)")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget: max wait for live sessions after SIGTERM/SIGINT")

		loadgen  = flag.Bool("loadgen", false, "run the load-generator client instead of the daemon")
		self     = flag.Bool("self", false, "loadgen: host an in-process server instead of dialing -addr")
		sessions = flag.Int("sessions", 1000, "loadgen: concurrent sessions")
		conns    = flag.Int("conns", 16, "loadgen: TCP connections (sessions are spread across them)")
		batch    = flag.Int("batch", 20, "loadgen: engine steps per step request")
		maxSteps = flag.Int("steps", 0, "loadgen: per-session step budget (0 = run every episode to its end)")
		scenario = flag.String("scenario", "leftturn", "loadgen: scenario (leftturn|multi|carfollow)")
		design   = flag.String("design", "ultimate", "loadgen: design (pure|basic|ultimate)")
		planner  = flag.String("planner", "cons", "loadgen: planner (cons|aggr)")
		disturb  = flag.String("disturb", "", "loadgen: channel disturbance preset (empty = perfect comms)")
		seed     = flag.Int64("seed", 1, "loadgen: base seed (session i uses seed+i)")
	)
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(loadgenConfig{
			addr: *addr, self: *self,
			sessions: *sessions, conns: *conns, batch: *batch, maxSteps: *maxSteps,
			scenario: *scenario, design: *design, planner: *planner, disturb: *disturb,
			seed:   *seed,
			server: serve.Config{Shards: *shards, MaxSessions: *maxSess, Mailbox: *mailbox, IdleTimeout: *idle},
		}); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		return
	}

	srv, err := serve.New(serve.Config{
		Shards:      *shards,
		MaxSessions: *maxSess,
		Mailbox:     *mailbox,
		IdleTimeout: *idle,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	if *httpAddr != "" {
		go func() {
			log.Printf("serving /metrics and /healthz on %s", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, srv); err != nil {
				log.Fatalf("http: %v", err)
			}
		}()
	}
	// Graceful shutdown: the first SIGTERM/SIGINT stops admissions and
	// drains live sessions up to -drain-timeout, then the final metrics
	// snapshot is flushed to the log so the last scrape is never lost.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	log.Printf("serving sessions on %s", *addr)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case sig := <-sigs:
		signal.Stop(sigs) // a second signal force-kills via the default disposition
		log.Printf("%s: draining (no new sessions; waiting up to %s for live sessions)", sig, *drain)
		st, err := srv.Shutdown(*drain)
		flushFinalMetrics(st, srv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	}
}

// flushFinalMetrics logs the terminal /metrics payload — the same shape
// the HTTP endpoint serves — so a scraper that misses the last interval
// can still recover the final counters from the process log.
func flushFinalMetrics(st serve.Stats, srv *serve.Server) {
	payload := struct {
		Server serve.Stats        `json:"server"`
		Engine telemetry.Snapshot `json:"engine"`
	}{st, srv.Metrics().Snapshot()}
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		log.Printf("final metrics: %v", err)
		return
	}
	log.Printf("final metrics:\n%s", raw)
}

type loadgenConfig struct {
	addr     string
	self     bool
	sessions int
	conns    int
	batch    int
	maxSteps int
	scenario string
	design   string
	planner  string
	disturb  string
	seed     int64
	server   serve.Config
}

// client is one synchronous protocol connection: one request in flight at
// a time, so responses need no correlation.
type client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}, nil
}

func (c *client) do(req serve.Request) (serve.Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return serve.Response{}, err
	}
	var resp serve.Response
	if err := c.dec.Decode(&resp); err != nil {
		return serve.Response{}, err
	}
	return resp, nil
}

func runLoadgen(cfg loadgenConfig) error {
	if cfg.sessions < 1 || cfg.conns < 1 || cfg.batch < 1 {
		return fmt.Errorf("loadgen: sessions, conns, and batch must be >= 1")
	}
	addr := cfg.addr
	if cfg.self {
		srv, err := serve.New(cfg.server)
		if err != nil {
			return err
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		addr = ln.Addr().String()
		log.Printf("loadgen: self-hosted server on %s", addr)
	}

	var (
		opened, openRejected   atomic.Int64
		finished, stepRejected atomic.Int64
		collided               atomic.Int64
		reqLatency             = telemetry.NewHistogram(
			1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9)
	)

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.conns)
	for ci := 0; ci < cfg.conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs[ci] = func() error {
				cl, err := dial(addr)
				if err != nil {
					return err
				}
				defer cl.conn.Close()

				// This connection's share of the session population.
				var sids []string
				for i := ci; i < cfg.sessions; i += cfg.conns {
					sid := fmt.Sprintf("lg-%d", i)
					resp, err := cl.do(serve.Request{
						Op: serve.OpOpen, SID: sid,
						Scenario: cfg.scenario, Design: cfg.design, Planner: cfg.planner,
						Disturb: cfg.disturb, Seed: cfg.seed + int64(i),
					})
					if err != nil {
						return err
					}
					if !resp.OK {
						openRejected.Add(1)
						continue
					}
					opened.Add(1)
					sids = append(sids, sid)
				}

				// Round-robin stepping keeps every session concurrently
				// live until its episode ends (or the budget runs out).
				// The working set is compacted in place, so it must not
				// alias sids (still needed for the close sweep).
				live := append([]string(nil), sids...)
				steps := 0
				for len(live) > 0 && (cfg.maxSteps == 0 || steps < cfg.maxSteps) {
					next := live[:0]
					for _, sid := range live {
						t0 := time.Now()
						resp, err := cl.do(serve.Request{Op: serve.OpStep, SID: sid, Steps: cfg.batch})
						reqLatency.Observe(float64(time.Since(t0).Nanoseconds()))
						if err != nil {
							return err
						}
						switch {
						case !resp.OK:
							stepRejected.Add(1)
						case resp.Done:
							finished.Add(1)
							if resp.Result != nil && resp.Result.Collided {
								collided.Add(1)
							}
						default:
							next = append(next, sid)
						}
					}
					live = next
					steps += cfg.batch
				}

				for _, sid := range sids {
					if _, err := cl.do(serve.Request{Op: serve.OpClose, SID: sid}); err != nil {
						return err
					}
				}
				return nil
			}()
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	cl, err := dial(addr)
	if err != nil {
		return err
	}
	defer cl.conn.Close()
	statsResp, err := cl.do(serve.Request{Op: serve.OpStats})
	if err != nil {
		return err
	}

	lat := reqLatency.Snapshot()
	fmt.Printf("loadgen: %d sessions over %d conns in %.2fs\n", cfg.sessions, cfg.conns, wall.Seconds())
	fmt.Printf("  opened %d  open-rejected %d  finished %d  collided %d  step-rejected %d\n",
		opened.Load(), openRejected.Load(), finished.Load(), collided.Load(), stepRejected.Load())
	fmt.Printf("  request latency p50 %.2fms  p99 %.2fms\n",
		lat.Quantile(0.5)/1e6, lat.Quantile(0.99)/1e6)
	if st := statsResp.Stats; st != nil {
		fmt.Printf("  server: peak %d sessions, %d steps (%.0f steps/s), step p50 %.2fµs p99 %.2fµs\n",
			st.PeakSessions, st.StepsExecuted, float64(st.StepsExecuted)/wall.Seconds(),
			st.StepLatencyNs.Quantile(0.5)/1e3, st.StepLatencyNs.Quantile(0.99)/1e3)
		if len(st.Rejections) > 0 {
			fmt.Printf("  server rejections: %v\n", st.Rejections)
		}
	}
	if c := collided.Load(); c > 0 {
		return fmt.Errorf("loadgen: %d episodes collided", c)
	}
	return nil
}
