// Command tables regenerates Table I and Table II of the paper: the
// comparison between the pure NN planners (conservative and aggressive),
// the basic compound planners, and the ultimate compound planners under
// the three communication settings.
//
// Usage:
//
//	tables [-table 1|2|all] [-n 2000] [-seed 42] [-csv]
//	       [-nn]           (imitation-train the NN planners first)
//	       [-models DIR]   (load trained NN planners from DIR)
//
// Without -nn or -models the analytic expert policies stand in for κ_n,
// which reproduces the same shapes in a fraction of the time.  The paper
// ran 80 000 episodes per setting; pass -n 80000 for full scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"safeplan/internal/experiments"
	"safeplan/internal/leftturn"
	"safeplan/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		table  = flag.String("table", "all", "which table: 1, 2, or all")
		n      = flag.Int("n", experiments.DefaultEpisodes, "episodes per setting and design")
		seed   = flag.Int64("seed", experiments.DefaultSeed, "base seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		useNN  = flag.Bool("nn", false, "imitation-train NN planners as κ_n")
		models = flag.String("models", "", "load trained NN planners from this directory")
	)
	flag.Parse()

	pl, err := resolvePlanners(*useNN, *models, *seed)
	if err != nil {
		log.Fatal(err)
	}

	run := func(kind experiments.PlannerKind, title string) {
		start := time.Now()
		rows, err := experiments.Table(kind, pl, *n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (n=%d per cell, κ_n=%s, %.1fs)\n", title, *n, pl.Pick(kind).Name(), time.Since(start).Seconds())
		tb := textio.NewTable("settings", "planner", "reaching time", "safe rate",
			"η value", "winning %", "emergency freq")
		for _, r := range rows {
			tb.AddRow(
				r.Setting, r.PlannerType,
				textio.F(r.ReachTime, 3)+"s",
				textio.Pct(r.SafeRate),
				textio.F(r.Eta, 3),
				textio.Pct(r.Winning),
				textio.Pct(r.EmergencyFreq),
			)
		}
		var renderErr error
		if *csv {
			renderErr = tb.CSV(os.Stdout)
		} else {
			renderErr = tb.Render(os.Stdout)
		}
		if renderErr != nil {
			log.Fatal(renderErr)
		}
		fmt.Println()
	}

	switch *table {
	case "1":
		run(experiments.Conservative, "Table I: conservative κ_n")
	case "2":
		run(experiments.Aggressive, "Table II: aggressive κ_n")
	case "all":
		run(experiments.Conservative, "Table I: conservative κ_n")
		run(experiments.Aggressive, "Table II: aggressive κ_n")
	default:
		log.Fatalf("unknown table %q", *table)
	}
}

// resolvePlanners picks the κ_n pair: loaded models, freshly trained NNs,
// or the analytic experts.
func resolvePlanners(train bool, modelsDir string, seed int64) (experiments.Planners, error) {
	cfg := leftturn.DefaultConfig()
	if modelsDir != "" {
		return experiments.LoadPlanners(modelsDir, cfg)
	}
	if train {
		log.Print("training NN planners (use -models to reuse saved ones)…")
		return experiments.TrainedPlanners(cfg, seed)
	}
	return experiments.ExpertPlanners(cfg), nil
}
