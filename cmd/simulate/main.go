// Command simulate runs one closed-loop episode of the unprotected left
// turn and prints the outcome — optionally the full per-step trace as CSV.
//
// Usage:
//
//	simulate [-planner cons|aggr] [-design pure|basic|ultimate]
//	         [-setting none|delayed|lost] [-seed 1] [-trace]
//	         [-models DIR]   (use trained NN planners instead of the experts)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/experiments"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		plKind  = flag.String("planner", "cons", "embedded planner κ_n: cons or aggr")
		design  = flag.String("design", "ultimate", "agent design: pure, basic, or ultimate")
		setting = flag.String("setting", "none", "communication setting: none, delayed, or lost")
		seed    = flag.Int64("seed", 1, "episode seed")
		trace   = flag.Bool("trace", false, "dump the per-step trace as CSV to stdout")
		models  = flag.String("models", "", "directory with trained NN models (empty: analytic experts)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	switch *setting {
	case "none":
	case "delayed":
		cfg.Comms = comms.Delayed(experiments.DelayedDelay, experiments.DelayedDropProb)
	case "lost":
		cfg.Comms = comms.Lost()
		cfg.Sensor = sensor.Uniform(experiments.LostSensorDelta)
	default:
		log.Fatalf("unknown setting %q", *setting)
	}

	pl := experiments.ExpertPlanners(cfg.Scenario)
	if *models != "" {
		var err error
		if pl, err = experiments.LoadPlanners(*models, cfg.Scenario); err != nil {
			log.Fatal(err)
		}
	}
	var kn planner.Planner
	switch *plKind {
	case "cons":
		kn = pl.Cons
	case "aggr":
		kn = pl.Aggr
	default:
		log.Fatalf("unknown planner %q", *plKind)
	}

	var agent core.Agent
	switch *design {
	case "pure":
		agent = &core.PureNN{Cfg: cfg.Scenario, Planner: kn}
	case "basic":
		agent = core.NewBasic(cfg.Scenario, kn)
	case "ultimate":
		agent = core.NewUltimate(cfg.Scenario, kn)
		cfg.InfoFilter = true
	default:
		log.Fatalf("unknown design %q", *design)
	}

	r, err := sim.Run(cfg, agent, sim.Options{Seed: *seed, Trace: *trace})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agent:    %s\n", agent.Name())
	fmt.Printf("setting:  %s  seed: %d\n", *setting, *seed)
	switch {
	case r.Collided:
		fmt.Printf("outcome:  COLLISION (η = %.3f)\n", r.Eta)
	case r.Reached:
		fmt.Printf("outcome:  reached target in %.2f s (η = %.4f)\n", r.ReachTime, r.Eta)
	default:
		fmt.Printf("outcome:  timeout (η = 0)\n")
	}
	fmt.Printf("steps:    %d, emergency steps: %d (%.2f%%)\n",
		r.Steps, r.EmergencySteps, 100*r.EmergencyFrequency())

	if *trace {
		tb := textio.NewTable("t", "ego_p", "ego_v", "ego_a", "onc_p", "onc_v",
			"est_p", "est_v", "cons_lo", "cons_hi", "aggr_lo", "aggr_hi", "emergency")
		for _, s := range r.Trace {
			tb.AddRow(
				textio.F(s.T, 2), textio.F(s.EgoP, 3), textio.F(s.EgoV, 3), textio.F(s.EgoA, 2),
				textio.F(s.OncP, 3), textio.F(s.OncV, 3),
				textio.F(s.EstP, 3), textio.F(s.EstV, 3),
				textio.F(s.ConsLo, 2), textio.F(s.ConsHi, 2),
				textio.F(s.AggrLo, 2), textio.F(s.AggrHi, 2),
				fmt.Sprint(s.Emergency),
			)
		}
		if err := tb.CSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
