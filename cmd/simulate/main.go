// Command simulate runs one closed-loop episode of the unprotected left
// turn — or a campaign of them — and prints the outcome, optionally the
// full per-step trace as CSV and a telemetry metrics dump.
//
// Usage:
//
//	simulate [-planner cons|aggr] [-design pure|basic|ultimate]
//	         [-setting none|delayed|lost] [-seed 1] [-trace]
//	         [-episodes N] [-workers N] [-metrics text|json]
//	         [-disturb PRESET] [-sensordisturb PRESET]
//	         [-guard] [-plannerfault PRESET]
//	         [-models DIR]   (use trained NN planners instead of the experts)
//
// -disturb overrides the channel with a named adversarial disturbance
// model (burst loss, jitter+reordering, stale replay, scripted blackout);
// -sensordisturb injects sensing faults (bias drift, bursty dropout).
// -guard wraps every planner call in the compute-fault guard;
// -plannerfault injects a named compute-fault model into the planner
// (panics, NaN outputs, stuck/biased commands, latency spikes) and
// installs the guard automatically.  Run with an unknown name (e.g.
// -disturb list) to see the presets.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/eval"
	"safeplan/internal/experiments"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/planner"
	"safeplan/internal/sensor"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simulate: ")
	var (
		plKind   = flag.String("planner", "cons", "embedded planner κ_n: cons or aggr")
		design   = flag.String("design", "ultimate", "agent design: pure, basic, or ultimate")
		setting  = flag.String("setting", "none", "communication setting: none, delayed, or lost")
		seed     = flag.Int64("seed", 1, "episode seed (campaigns use seed…seed+N−1)")
		trace    = flag.Bool("trace", false, "dump the per-step trace as CSV to stdout (single episode only)")
		episodes = flag.Int("episodes", 1, "number of episodes (>1 runs a seed-paired campaign)")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0: one per core)")
		metrics  = flag.String("metrics", "", "dump telemetry metrics: text or json")
		models   = flag.String("models", "", "directory with trained NN models (empty: analytic experts)")
		dist     = flag.String("disturb", "", "adversarial channel disturbance preset (overrides -setting comms)")
		sensDist = flag.String("sensordisturb", "", "adversarial sensing disturbance preset")
		guardOn  = flag.Bool("guard", false, "wrap planner calls in the compute-fault guard")
		plFault  = flag.String("plannerfault", "", "planner compute-fault preset (implies -guard)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	switch *setting {
	case "none":
	case "delayed":
		cfg.Comms = comms.Delayed(experiments.DelayedDelay, experiments.DelayedDropProb)
	case "lost":
		cfg.Comms = comms.Lost()
		cfg.Sensor = sensor.Uniform(experiments.LostSensorDelta)
	default:
		log.Fatalf("unknown setting %q", *setting)
	}
	if *dist != "" {
		m, err := disturb.Preset(*dist)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Comms = comms.Disturbed(m)
	}
	if *sensDist != "" {
		m, err := disturb.SensorPreset(*sensDist)
		if err != nil {
			log.Fatal(err)
		}
		cfg.SensorDisturb = m
	}
	if *guardOn {
		gc := guard.DefaultConfig(cfg.Scenario.Ego)
		cfg.Guard = &gc
	}
	if *plFault != "" {
		m, err := faultinject.Preset(*plFault)
		if err != nil {
			log.Fatal(err)
		}
		cfg.PlannerFault = m
	}
	settingDesc := *setting
	if *dist != "" {
		settingDesc += " +disturb:" + *dist
	}
	if *sensDist != "" {
		settingDesc += " +sensor:" + *sensDist
	}
	if *plFault != "" {
		settingDesc += " +fault:" + *plFault
	}

	pl := experiments.ExpertPlanners(cfg.Scenario)
	if *models != "" {
		var err error
		if pl, err = experiments.LoadPlanners(*models, cfg.Scenario); err != nil {
			log.Fatal(err)
		}
	}
	var kn planner.Planner
	switch *plKind {
	case "cons":
		kn = pl.Cons
	case "aggr":
		kn = pl.Aggr
	default:
		log.Fatalf("unknown planner %q", *plKind)
	}

	var agent core.Agent
	switch *design {
	case "pure":
		agent = &core.PureNN{Cfg: cfg.Scenario, Planner: kn}
	case "basic":
		agent = core.NewBasic(cfg.Scenario, kn)
	case "ultimate":
		agent = core.NewUltimate(cfg.Scenario, kn)
		cfg.InfoFilter = true
	default:
		log.Fatalf("unknown design %q", *design)
	}

	var coll *telemetry.Metrics
	switch *metrics {
	case "":
	case "text", "json":
		coll = telemetry.NewMetrics()
		// Compound agents additionally report monitor selections.
		if ia, ok := agent.(interface{ SetCollector(telemetry.Collector) }); ok {
			ia.SetCollector(coll)
		}
	default:
		log.Fatalf("unknown -metrics format %q (want text or json)", *metrics)
	}

	fmt.Printf("agent:    %s\n", agent.Name())
	if *episodes > 1 {
		var c telemetry.Collector
		if coll != nil {
			c = coll
		}
		rs, err := sim.RunCampaign(cfg, agent, *episodes, sim.CampaignOptions{
			Options:  sim.Options{Collector: c},
			BaseSeed: *seed,
			Workers:  *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		st := eval.Aggregate(rs)
		fmt.Printf("setting:  %s  seeds: %d…%d\n", settingDesc, *seed, *seed+int64(*episodes)-1)
		fmt.Printf("outcome:  safe %d/%d (%.2f%%), reached %d, mean η = %.4f\n",
			st.Safe, st.N, 100*st.SafeRate(), st.Reached, st.MeanEta)
		dumpCampaignGuard(rs)
		dumpMetrics(coll, *metrics)
		return
	}

	var c telemetry.Collector
	if coll != nil {
		c = coll
	}
	r, err := sim.Run(cfg, agent, sim.Options{Seed: *seed, Trace: *trace, Collector: c})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("setting:  %s  seed: %d\n", settingDesc, *seed)
	switch {
	case r.Collided:
		fmt.Printf("outcome:  COLLISION (η = %.3f)\n", r.Eta)
	case r.Reached:
		fmt.Printf("outcome:  reached target in %.2f s (η = %.4f)\n", r.ReachTime, r.Eta)
	default:
		fmt.Printf("outcome:  timeout (η = 0)\n")
	}
	fmt.Printf("steps:    %d, emergency steps: %d (%.2f%%)\n",
		r.Steps, r.EmergencySteps, 100*r.EmergencyFrequency())
	if r.Guard.PlannerCalls > 0 {
		g := r.Guard
		fmt.Printf("guard:    %d faults (%d panic, %d non-finite, %d range, %d deadline), "+
			"fallbacks %d last-good + %d κ_e, bypass %d, worst state %s\n",
			g.Faults, g.Panics, g.NonFinite, g.RangeRejects, g.Deadline,
			g.FallbackLastGood, g.FallbackEmergency, g.BypassSteps, g.WorstState)
	}
	dumpMetrics(coll, *metrics)

	if *trace {
		dumpTrace(r)
	}
}

// dumpCampaignGuard prints the summed guard counters of a campaign, or
// nothing when no episode ran guarded.
func dumpCampaignGuard(rs []sim.Result) {
	var calls, faults, lastGood, emrg, bypass int
	worst := guard.Nominal
	episodesWithFaults := 0
	for _, r := range rs {
		g := r.Guard
		calls += g.PlannerCalls
		faults += g.Faults
		lastGood += g.FallbackLastGood
		emrg += g.FallbackEmergency
		bypass += g.BypassSteps
		if g.Faults > 0 {
			episodesWithFaults++
		}
		if g.WorstState > worst {
			worst = g.WorstState
		}
	}
	if calls == 0 {
		return
	}
	fmt.Printf("guard:    %d faults over %d episodes (%d with ≥1 fault), "+
		"fallbacks %d last-good + %d κ_e, bypass %d, worst state %s\n",
		faults, len(rs), episodesWithFaults, lastGood, emrg, bypass, worst)
}

// dumpMetrics prints the telemetry snapshot in the requested format.
func dumpMetrics(m *telemetry.Metrics, format string) {
	if m == nil {
		return
	}
	s := m.Snapshot()
	switch format {
	case "json":
		out, err := s.JSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	default:
		fmt.Print("--- telemetry ---\n")
		if err := s.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func dumpTrace(r sim.Result) {
	tb := textio.NewTable("t", "ego_p", "ego_v", "ego_a", "onc_p", "onc_v",
		"est_p", "est_v", "cons_lo", "cons_hi", "aggr_lo", "aggr_hi", "emergency")
	for _, s := range r.Trace {
		tb.AddRow(
			textio.F(s.T, 2), textio.F(s.EgoP, 3), textio.F(s.EgoV, 3), textio.F(s.EgoA, 2),
			textio.F(s.OncP, 3), textio.F(s.OncV, 3),
			textio.F(s.EstP, 3), textio.F(s.EstV, 3),
			textio.F(s.ConsLo, 2), textio.F(s.ConsHi, 2),
			textio.F(s.AggrLo, 2), textio.F(s.AggrHi, 2),
			fmt.Sprint(s.Emergency),
		)
	}
	if err := tb.CSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
