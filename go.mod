module safeplan

go 1.22
