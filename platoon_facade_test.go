package safeplan_test

import (
	"reflect"
	"testing"

	"safeplan"
)

// TestPlatoonFacade exercises the public platoon entry points: a chained
// four-vehicle episode and campaign through the facade, the two-vehicle
// equivalence with the car-following runner, and the sharded campaign
// engine via the PlatoonCampaign adapter with the string-stability
// checker in fail mode.
func TestPlatoonFacade(t *testing.T) {
	cfg := safeplan.DefaultPlatoonSimConfig()
	cfg.InfoFilter = true
	sc := cfg.LinkScenario()
	agent := safeplan.BuildCarFollowUltimate(sc, safeplan.NewCarFollowConservativeExpert(sc))

	r, err := safeplan.RunPlatoonEpisode(cfg, agent, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collided {
		t.Fatal("guaranteed design collided")
	}
	if len(r.Links) != cfg.Vehicles-1 {
		t.Fatalf("links = %d, want %d", len(r.Links), cfg.Vehicles-1)
	}

	st, err := safeplan.RunPlatoonCampaign(cfg, agent, 30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.SafeRate() != 1 {
		t.Fatalf("safe rate %v under clean comms", st.SafeRate())
	}

	// N = 2 is the car-following scenario: the aggregates must agree.
	two := cfg
	two.Vehicles = 2
	pst, err := safeplan.RunPlatoonCampaign(two, agent, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := safeplan.RunCarFollowCampaign(two.SimConfig, agent, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pst, cst) {
		t.Fatalf("two-vehicle platoon stats diverge from car following:\nplatoon:   %+v\ncarfollow: %+v", pst, cst)
	}

	rep, err := safeplan.RunShardedCampaign(safeplan.CampaignSpec{
		Name:     "platoon-facade",
		Episodes: 60,
		BaseSeed: 1,
		Workers:  4,
		Invariants: []safeplan.Invariant{
			safeplan.PlatoonStringStability{},
		},
	}, safeplan.PlatoonCampaign(cfg, agent))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Collided != 0 {
		t.Fatalf("sharded platoon campaign collided %d times", rep.Stats.Collided)
	}
}
