// Package safeplan is a safety-guaranteed framework for neural-network-
// based planners in connected vehicles under communication disturbance —
// a from-scratch Go reproduction of Chang et al., DATE 2023.
//
// Given any planner κ_n (an NN trained here by imitation, or any
// user-supplied policy), the framework produces a compound planner κ_c
// that (a) is guaranteed never to enter the unsafe set, enforced by a
// runtime monitor and an emergency planner, and (b) matches or beats the
// efficiency of κ_n, helped by an information filter over delayed V2V
// messages and noisy sensors and by an aggressive unsafe-set estimate fed
// to κ_n.
//
// # Quick start
//
//	scenario := safeplan.DefaultScenario()
//	kn := safeplan.NewConservativeExpert(scenario)   // or load/train an NN planner
//	agent := safeplan.BuildUltimate(scenario, kn)    // monitor + κ_e + filter + aggressive set
//	cfg := safeplan.DefaultSimConfig()
//	cfg.InfoFilter = true                            // pair ultimate agents with the filter
//	result, err := safeplan.RunEpisode(cfg, agent, 1 /* seed */)
//
// See the examples/ directory for runnable programs and internal/… for the
// substrate packages (dynamics, reachability, Kalman filtering, the V2V
// channel model, the unprotected-left-turn case study, and the experiment
// harness that regenerates every table and figure of the paper).
package safeplan

import (
	"fmt"

	"safeplan/internal/campaign"
	"safeplan/internal/carfollow"
	"safeplan/internal/comms"
	"safeplan/internal/core"
	"safeplan/internal/disturb"
	"safeplan/internal/dynamics"
	"safeplan/internal/eval"
	"safeplan/internal/experiments"
	"safeplan/internal/faultinject"
	"safeplan/internal/guard"
	"safeplan/internal/interval"
	"safeplan/internal/leftturn"
	"safeplan/internal/nn/ibp"
	"safeplan/internal/planner"
	"safeplan/internal/platoon"
	"safeplan/internal/sensor"
	"safeplan/internal/serve"
	"safeplan/internal/sim"
	"safeplan/internal/telemetry"
	"safeplan/internal/traffic"
)

// wrapErr gives every public entry point the same "safeplan:" error
// prefix that Validate uses, so callers can match on it uniformly.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("safeplan: %w", err)
}

// Core vocabulary, re-exported for downstream users.  The aliased types
// live in internal packages; the aliases are the supported public names.
type (
	// Scenario is the unprotected-left-turn scenario configuration
	// (geometry, vehicle limits, control period, margins, Eq. 8 buffers).
	Scenario = leftturn.Config
	// VehicleState is a (position, velocity) kinematic state.
	VehicleState = dynamics.State
	// VehicleLimits is a physical envelope (velocity and acceleration).
	VehicleLimits = dynamics.Limits
	// Interval is a closed real interval.
	Interval = interval.Interval
	// OncomingEstimate is planner-visible knowledge about the oncoming car.
	OncomingEstimate = leftturn.OncomingEstimate

	// Planner maps (t, ego state, oncoming window) to an acceleration.
	Planner = planner.Planner
	// PlannerFunc adapts a plain function to the Planner interface.
	PlannerFunc = planner.Func
	// Expert is an analytic rule policy (the imitation teacher).
	Expert = planner.Expert
	// NNPlanner is a trained neural-network planner.
	NNPlanner = planner.NNPlanner
	// TrainOptions drives imitation learning.
	TrainOptions = planner.TrainOptions

	// Agent is a closed-loop decision maker (pure κ_n or compound κ_c).
	Agent = core.Agent
	// Knowledge carries the sound and fused filter estimates per step.
	Knowledge = core.Knowledge
	// CompoundPlanner is the paper's κ_c.
	CompoundPlanner = core.Compound

	// CommsConfig describes the V2V channel disturbance.
	CommsConfig = comms.Config
	// Message is one V2V state report (the StepInput injection unit).
	Message = comms.Message
	// SensorConfig holds the uniform sensor noise half-widths.
	SensorConfig = sensor.Config
	// SensorReading is one onboard measurement (the StepInput injection
	// unit for sensed state).
	SensorReading = sensor.Reading
	// DriverConfig shapes the oncoming vehicle's random behaviour.
	DriverConfig = traffic.DriverConfig

	// SimConfig assembles one simulation campaign.
	SimConfig = sim.Config
	// EpisodeResult scores one closed-loop episode.
	EpisodeResult = sim.Result
	// CampaignStats aggregates a campaign (Tables I–II statistics).
	CampaignStats = eval.Stats
)

// DefaultScenario returns the evaluation's unprotected-left-turn constants.
func DefaultScenario() Scenario { return leftturn.DefaultConfig() }

// DefaultSimConfig returns the evaluation defaults (perfect comms, δ = 1,
// Δt_m = Δt_s = 0.1 s, the paper's initial-condition sweep).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Channel disturbance settings of the paper's evaluation.
var (
	// NoDisturbance is perfect communication.
	NoDisturbance = comms.NoDisturbance
	// DelayedComms delays every message and drops each with probability pd.
	DelayedComms = comms.Delayed
	// LostComms drops every message (sensors only).
	LostComms = comms.Lost
	// UniformSensor sets δ_p = δ_v = δ_a = d.
	UniformSensor = sensor.Uniform
)

// Composable disturbance models (internal/disturb), re-exported so users
// can script channels beyond the paper's i.i.d. drop + constant delay.
type (
	// DisturbanceModel is a composable V2V channel disturbance process.
	DisturbanceModel = disturb.Model
	// SensorDisturbanceModel is an adversarial sensing-fault process.
	SensorDisturbanceModel = disturb.SensorModel
	// BurstLoss is a Gilbert–Elliott two-state burst-loss channel.
	BurstLoss = disturb.GilbertElliott
	// DelayJitter draws per-message latency (uniform + heavy tail), which
	// reorders messages in flight.
	DelayJitter = disturb.Jitter
	// StaleReplay wraps a model and re-delivers stale duplicate copies.
	StaleReplay = disturb.Replay
	// BlackoutModel drops every message while active.
	BlackoutModel = disturb.Blackout
	// DisturbanceSchedule scripts disturbance phases over episode time.
	DisturbanceSchedule = disturb.Schedule
	// DisturbancePhase is one (start time, model) entry of a schedule.
	DisturbancePhase = disturb.Phase
	// SensorBiasDrift drifts sensor readings toward the ±δ envelope edge.
	SensorBiasDrift = disturb.BiasDrift
	// SensorDropoutModel is a bursty sensing-dropout chain.
	SensorDropoutModel = disturb.SensorDropout
)

// Named disturbance presets (see internal/disturb/preset.go).
var (
	// DisturbancePreset resolves a named channel disturbance ("burst",
	// "jitter", "blackout", "worst", …).
	DisturbancePreset = disturb.Preset
	// DisturbancePresetNames lists the channel presets.
	DisturbancePresetNames = disturb.PresetNames
	// SensorDisturbancePreset resolves a named sensing disturbance.
	SensorDisturbancePreset = disturb.SensorPreset
	// SensorDisturbancePresetNames lists the sensing presets.
	SensorDisturbancePresetNames = disturb.SensorPresetNames
)

// Planner-fault containment (internal/guard, internal/faultinject): a
// guard wraps every κ_n invocation, catching panics, rejecting
// non-finite or out-of-envelope commands, enforcing a per-step compute
// deadline, and substituting a validated fallback — so a compute-faulty
// planner degrades to the emergency planner instead of crashing or
// steering the vehicle with garbage.  The paper's safety theorem needs
// only an admissible acceleration each step, which the fallback always
// supplies; see DESIGN.md §11 for the argument.
type (
	// GuardConfig tunes the planner guard (budgets, fallback TTL,
	// degradation thresholds).  Leave Limits zero to inherit the
	// scenario's ego envelope.
	GuardConfig = guard.Config
	// GuardState is the degradation state machine's level
	// (nominal → degraded → emergency-only).
	GuardState = guard.State
	// GuardEpisodeStats aggregates one episode's guard activity
	// (fault counts by class, fallback counts, state transitions).
	GuardEpisodeStats = guard.EpisodeStats
	// PlannerFaultModel is a composable compute-fault injection process
	// (panics, NaN outputs, stuck/biased output stages, latency spikes).
	PlannerFaultModel = faultinject.Model
)

// Guard degradation states, re-exported for switch statements over
// GuardEpisodeStats.WorstState.
const (
	GuardNominal       = guard.Nominal
	GuardDegraded      = guard.Degraded
	GuardEmergencyOnly = guard.EmergencyOnly
)

// DefaultGuardConfig returns the standard guard tuning for a vehicle
// envelope (0.1 s step budget, 5-step fallback TTL, 3/8 degradation
// scores, 20-step recovery streak).
func DefaultGuardConfig(lim VehicleLimits) GuardConfig { return guard.DefaultConfig(lim) }

// Named planner-fault presets (see internal/faultinject/preset.go).
var (
	// PlannerFaultPreset resolves a named compute-fault model ("panic",
	// "nan", "stuck", "bias", "latency", "flaky", "worst", …).
	PlannerFaultPreset = faultinject.Preset
	// PlannerFaultPresetNames lists the planner-fault presets.
	PlannerFaultPresetNames = faultinject.PresetNames
)

// FaultInvariants returns the checker set for guarded runs under planner
// fault injection: no collision, sound estimates, the Eq. 4 one-step
// slack, and guard-intervention well-formedness.  MonitorConsistency is
// deliberately absent — a guard-forced κ_e step diverges from the
// monitor's verdict by design.
func FaultInvariants(sc Scenario) []Invariant {
	return []Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		sim.EmergencyOneStep{Cfg: sc},
		sim.NewGuardConsistency(sc),
	}
}

// Certified interval bound propagation (internal/nn/ibp): verified mode
// cross-checks every executed κ_n command against a sound interval
// enclosure of the NN planner's output, flagging (never substituting —
// the monitor envelope stays the enforcement layer) any command outside
// the certified range.  See DESIGN.md §15 for the soundness argument.
type (
	// IBPPropagator propagates interval boxes through an NN planner's MLP
	// with sign-split interval affine arithmetic; a point box reproduces
	// the scalar forward pass bit for bit.
	IBPPropagator = ibp.Propagator
	// CertifyConfig enables verified mode on a left-turn simulation
	// config (see SimConfig.Certify and WithCertify).
	CertifyConfig = sim.CertifyConfig
)

// NewIBPPropagator snapshots a trained NN planner into an interval
// propagator for verified mode.  The snapshot is deep: later planner
// training does not affect the propagator.
func NewIBPPropagator(p *NNPlanner) (*IBPPropagator, error) {
	prop, err := ibp.New(p.Net, p.Norm)
	return prop, wrapErr(err)
}

// NewConservativeExpert returns the yield-first expert policy κ_n,cons.
func NewConservativeExpert(sc Scenario) *Expert { return planner.ConservativeExpert(sc) }

// NewAggressiveExpert returns the gap-taking expert policy κ_n,aggr.
func NewAggressiveExpert(sc Scenario) *Expert { return planner.AggressiveExpert(sc) }

// TrainPlanner imitation-trains an NN planner from an expert (or any
// Planner used as the teacher) and returns it with its final training loss.
func TrainPlanner(sc Scenario, teacher Planner, label string, opts TrainOptions) (*NNPlanner, float64, error) {
	p, loss, err := planner.TrainNNPlanner(sc, teacher, label, opts)
	return p, loss, wrapErr(err)
}

// LoadPlanner reads an NN planner saved with NNPlanner.Save.
func LoadPlanner(path, label string, sc Scenario) (*NNPlanner, error) {
	p, err := planner.LoadNNPlanner(path, label, sc.Ego)
	return p, wrapErr(err)
}

// BuildPure wraps κ_n without any safety machinery — the paper's baseline.
func BuildPure(sc Scenario, kn Planner) Agent { return &core.PureNN{Cfg: sc, Planner: kn} }

// BuildBasic builds the basic compound planner κ_cb: runtime monitor and
// emergency planner only.  Run it with SimConfig.InfoFilter = false.
func BuildBasic(sc Scenario, kn Planner) *CompoundPlanner { return core.NewBasic(sc, kn) }

// BuildUltimate builds the ultimate compound planner κ_cu: monitor,
// emergency planner, and aggressive unsafe-set estimation.  Pair it with
// SimConfig.InfoFilter = true to enable the information filter.
func BuildUltimate(sc Scenario, kn Planner) *CompoundPlanner { return core.NewUltimate(sc, kn) }

// Telemetry vocabulary, re-exported from internal/telemetry: collectors
// observe the engine's per-step probes (monitor selections, estimate
// widths, planner latency), per-episode outcomes, and campaign progress.
type (
	// Collector receives telemetry probes; implementations must be safe
	// for concurrent use (campaigns share one collector across workers).
	Collector = telemetry.Collector
	// StepProbe is one control step's observability payload.
	StepProbe = telemetry.StepProbe
	// EpisodeOutcome is the scored result of one finished episode.
	EpisodeOutcome = telemetry.EpisodeOutcome
	// Metrics is the standard atomic-counter/histogram collector.
	Metrics = telemetry.Metrics
	// MetricsSnapshot is a point-in-time copy of a Metrics collector,
	// encodable as JSON and renderable as text.
	MetricsSnapshot = telemetry.Snapshot
	// ProgressFunc adapts a callback to a progress-only Collector.
	ProgressFunc = telemetry.ProgressFunc
)

// NewMetrics returns an empty Metrics collector.
func NewMetrics() *Metrics { return telemetry.NewMetrics() }

// NewEpisodeScratch returns an empty episode arena (see EpisodeScratch).
func NewEpisodeScratch() *EpisodeScratch { return sim.NewScratch() }

// MultiCollector bundles several collectors into one (e.g. Metrics plus a
// ProgressFunc driving a console progress line).
func MultiCollector(cs ...Collector) Collector { return telemetry.Multi(cs...) }

// RunOption customizes the Run* entry points (functional options).
type RunOption func(*runSettings)

type runSettings struct {
	trace      bool
	collector  telemetry.Collector
	workers    int
	workersSet bool
	disturb    disturb.Model
	sensorDist disturb.SensorModel
	guard      *guard.Config
	fault      faultinject.Model
	certify    *sim.CertifyConfig
}

// WithTrace records the per-step trace in the episode result.  It is
// ignored by campaign entry points (a campaign of traces would dwarf the
// statistics it aggregates; run the interesting seed individually).
func WithTrace() RunOption { return func(s *runSettings) { s.trace = true } }

// WithCollector attaches a telemetry collector to the run.  The engine
// feeds it per-step probes and episode outcomes; compound agents
// additionally report their runtime-monitor selections.  Campaigns share
// the collector across workers, so it must be concurrency-safe
// (telemetry.Metrics is).
func WithCollector(c Collector) RunOption { return func(s *runSettings) { s.collector = c } }

// WithWorkers bounds a campaign's episode-level parallelism to n
// goroutines (the default is one per core).  n must be ≥ 1; campaign
// entry points reject anything else.  Single-episode entry points ignore
// it beyond the validation.
func WithWorkers(n int) RunOption {
	return func(s *runSettings) {
		s.workers = n
		s.workersSet = true
	}
}

// WithDisturbance overrides the run's V2V channel with a composable
// disturbance model (burst loss, delay jitter with reordering, stale
// replay, scripted phase schedules).  The model supersedes the config's
// Delay/DropProb pair; Lost and the outage window still apply first.
//
//	m, _ := safeplan.DisturbancePreset("burst")
//	stats, err := safeplan.RunCampaign(cfg, agent, 1000, 1, safeplan.WithDisturbance(m))
func WithDisturbance(m DisturbanceModel) RunOption {
	return func(s *runSettings) { s.disturb = m }
}

// WithSensorDisturbance injects adversarial sensing faults (bias drift,
// bursty dropout).  Biased readings remain inside the sound ±δ envelope,
// so the safety guarantee is unaffected.
func WithSensorDisturbance(m SensorDisturbanceModel) RunOption {
	return func(s *runSettings) { s.sensorDist = m }
}

// WithGuard wraps every planner invocation in the compute-fault guard:
// panics are recovered, non-finite or out-of-envelope commands rejected,
// the per-step compute budget enforced, and a validated fallback (the
// last good command or κ_e) substituted.  With a healthy planner the
// guard is a bit-exact pass-through — traces and statistics are
// unchanged.  Leave cfg.Limits zero to inherit the scenario's envelope.
//
//	gc := safeplan.DefaultGuardConfig(safeplan.VehicleLimits{})
//	res, err := safeplan.RunEpisode(cfg, agent, 1, safeplan.WithGuard(gc))
func WithGuard(cfg GuardConfig) RunOption {
	return func(s *runSettings) { s.guard = &cfg }
}

// WithCertify enables IBP verified mode on left-turn entry points: every
// executed κ_n command is cross-checked against the certified output
// range and counted in EpisodeResult.CertifiedSteps /
// CertifiedRangeMisses.  Verified mode is observation-only — it never
// changes the episode.  Car-following entry points ignore it.
//
//	prop, _ := safeplan.NewIBPPropagator(kn)
//	res, err := safeplan.RunEpisode(cfg, agent, 1, safeplan.WithCertify(safeplan.CertifyConfig{Prop: prop}))
func WithCertify(cfg CertifyConfig) RunOption {
	return func(s *runSettings) { s.certify = &cfg }
}

// WithPlannerFault injects compute faults into every planner invocation
// (inside the guard, so injected panics and latencies are contained and
// accounted like genuine ones).  A fault model without an explicit
// WithGuard installs the default guard — injected panics never escape.
//
//	m, _ := safeplan.PlannerFaultPreset("worst")
//	stats, err := safeplan.RunCampaign(cfg, agent, 1000, 1, safeplan.WithPlannerFault(m))
func WithPlannerFault(m PlannerFaultModel) RunOption {
	return func(s *runSettings) { s.fault = m }
}

// applySettings folds the options and validates them.
func applySettings(opts []RunOption) (runSettings, error) {
	var s runSettings
	for _, o := range opts {
		o(&s)
	}
	if s.workersSet && s.workers < 1 {
		return s, fmt.Errorf("safeplan: WithWorkers(%d): worker count must be >= 1", s.workers)
	}
	if s.disturb != nil {
		if err := s.disturb.Validate(); err != nil {
			return s, fmt.Errorf("safeplan: WithDisturbance: %w", err)
		}
	}
	if s.sensorDist != nil {
		if err := s.sensorDist.Validate(); err != nil {
			return s, fmt.Errorf("safeplan: WithSensorDisturbance: %w", err)
		}
	}
	if s.fault != nil {
		if err := s.fault.Validate(); err != nil {
			return s, fmt.Errorf("safeplan: WithPlannerFault: %w", err)
		}
	}
	return s, nil
}

// instrumentable is the optional agent contract behind WithCollector: the
// compound planners implement it to report monitor selections.
type instrumentable interface {
	SetCollector(telemetry.Collector)
}

// attach hands the collector to the agent when it supports
// instrumentation (pure agents have no monitor to report on).
func (s runSettings) attach(agent any) {
	if s.collector == nil {
		return
	}
	if ia, ok := agent.(instrumentable); ok {
		ia.SetCollector(s.collector)
	}
}

// applySim folds the disturbance options into a (local copy of a) left-turn
// simulation config.
func (s runSettings) applySim(cfg *sim.Config) {
	if s.disturb != nil {
		cfg.Comms.Model = s.disturb
	}
	if s.sensorDist != nil {
		cfg.SensorDisturb = s.sensorDist
	}
	if s.guard != nil {
		cfg.Guard = s.guard
	}
	if s.fault != nil {
		cfg.PlannerFault = s.fault
	}
	if s.certify != nil {
		cfg.Certify = s.certify
	}
}

// applyCarFollow folds the disturbance options into a car-following config.
func (s runSettings) applyCarFollow(cfg *carfollow.SimConfig) {
	if s.disturb != nil {
		cfg.Comms.Model = s.disturb
	}
	if s.sensorDist != nil {
		cfg.SensorDisturb = s.sensorDist
	}
	if s.guard != nil {
		cfg.Guard = s.guard
	}
	if s.fault != nil {
		cfg.PlannerFault = s.fault
	}
}

// RunEpisode simulates one closed-loop episode.  Options select per-run
// behaviour: WithTrace records the per-step trace, WithCollector attaches
// a telemetry collector.
func RunEpisode(cfg SimConfig, agent Agent, seed int64, opts ...RunOption) (EpisodeResult, error) {
	s, err := applySettings(opts)
	if err != nil {
		return EpisodeResult{}, err
	}
	s.attach(agent)
	s.applySim(&cfg)
	r, err := sim.Run(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return r, wrapErr(err)
}

// RunCampaign simulates n episodes over seeds baseSeed…baseSeed+n−1 in
// parallel and aggregates the paper's statistics.  Options select
// campaign behaviour: WithCollector attaches a shared telemetry collector
// (fed per-step probes, episode outcomes, and campaign progress),
// WithWorkers bounds the parallelism.
func RunCampaign(cfg SimConfig, agent Agent, n int, baseSeed int64, opts ...RunOption) (CampaignStats, error) {
	s, err := applySettings(opts)
	if err != nil {
		return CampaignStats{}, err
	}
	s.attach(agent)
	s.applySim(&cfg)
	rs, err := sim.RunCampaign(cfg, agent, n, sim.CampaignOptions{
		Options:  sim.Options{Collector: s.collector},
		BaseSeed: baseSeed,
		Workers:  s.workers,
	})
	if err != nil {
		return CampaignStats{}, wrapErr(err)
	}
	return eval.Aggregate(rs), nil
}

// Sharded Monte-Carlo campaign engine (internal/campaign): deterministic
// parallel campaigns with online statistics (Welford moments, Wilson
// confidence intervals, latency percentiles), pluggable invariant checkers,
// and checkpoint/resume.  Aggregate statistics are bit-identical for any
// worker count.
type (
	// CampaignSpec configures a sharded campaign (episodes, base seed,
	// workers, invariants, checkpoint path).
	CampaignSpec = campaign.Spec
	// CampaignReport is a finished campaign: deterministic Stats plus
	// wall-clock Perf.
	CampaignReport = campaign.Report
	// CampaignEpisodeFunc runs one episode under campaign-filled options.
	CampaignEpisodeFunc = campaign.EpisodeFunc
	// CampaignBatchFunc runs one lockstep group of episodes — one lane per
	// seed, results in seed order — for RunBatchedCampaign.
	CampaignBatchFunc = campaign.BatchFunc
	// EpisodeOptions is the per-episode options payload a campaign hands an
	// episode function (seed and invariants filled by the runner).  Named
	// here so custom CampaignEpisodeFunc implementations — not just the
	// three scenario adapters — can be written against the facade.
	EpisodeOptions = sim.Options

	// EpisodeScratch is the reusable per-episode arena behind the
	// zero-allocation stepping path (DESIGN.md §12).  It is purely an
	// optimization: results are bit-identical with and without one, and a
	// nil scratch selects the legacy allocate-per-episode path.  The
	// campaign engines pool arenas automatically; set EpisodeOptions.Scratch
	// only in custom episode loops that replay many episodes serially.
	EpisodeScratch = sim.Scratch

	// Invariant is a runtime safety checker threaded through the step loop;
	// the same checkers run in unit tests, fuzz targets, and campaigns.
	Invariant = sim.Invariant
	// InvariantViolation is the error an Invariant reports.
	InvariantViolation = sim.ViolationError
)

// Campaign episode adapters for the scenarios.
var (
	// LeftTurnCampaign adapts the single-vehicle left-turn runner.
	LeftTurnCampaign = campaign.LeftTurn
	// MultiVehicleCampaign adapts the multi-vehicle runner.
	MultiVehicleCampaign = campaign.MultiVehicle
	// CarFollowCampaign adapts the car-following runner.
	CarFollowCampaign = campaign.CarFollow
	// PlatoonCampaign adapts the N-vehicle chained-link platoon runner.
	PlatoonCampaign = campaign.Platoon
	// LeftTurnBatchCampaign adapts the lockstep batched left-turn engine
	// (internal/sim/batch) for RunBatchedCampaign.
	LeftTurnBatchCampaign = campaign.LeftTurnBatch
)

// RunShardedCampaign executes a deterministic sharded campaign; see
// CampaignSpec for the knobs and internal/campaign for the determinism
// contract.
func RunShardedCampaign(spec CampaignSpec, episode CampaignEpisodeFunc) (*CampaignReport, error) {
	rep, err := campaign.Run(spec, episode)
	return rep, wrapErr(err)
}

// RunBatchedCampaign executes a sharded campaign through the lockstep
// batch engine: each shard walks its episode range in groups of
// CampaignSpec.BatchSize lanes stepped in structure-of-arrays lockstep
// (DESIGN.md §14).  Every lane is byte-identical to its scalar episode
// and shards fold in episode order, so Stats matches RunShardedCampaign
// bit for bit at any (worker count × batch size); checkpoints
// interoperate between the two entry points.
func RunBatchedCampaign(spec CampaignSpec, run CampaignBatchFunc) (*CampaignReport, error) {
	rep, err := campaign.RunBatch(spec, run)
	return rep, wrapErr(err)
}

// StandardInvariants returns the full checker set for guaranteed left-turn
// compound designs: no collision (η ≥ 0), sound estimates contain the true
// state, the Eq. 4 emergency one-step slack, and monitor-selects-κ_e-iff-X_b
// consistency.  Attach them via CampaignSpec.Invariants; do not attach
// NoCollision to pure κ_n agents, which carry no guarantee.
func StandardInvariants(sc Scenario) []Invariant {
	return []Invariant{
		sim.NoCollision{},
		sim.SoundEstimate{},
		sim.EmergencyOneStep{Cfg: sc},
		sim.NewMonitorConsistency(sc),
	}
}

// WinningPercentage compares two paired η series (see eval).
func WinningPercentage(a, b []float64) (float64, error) {
	w, err := eval.WinningPercentage(a, b)
	return w, wrapErr(err)
}

// Experiment entry points (Tables I–II, Fig. 5–6, RMSE, ablations); see
// internal/experiments for the row/point types.
type (
	// TableRow is one line of Table I/II.
	TableRow = experiments.TableRow
	// SweepPoint is one x-position of a Fig. 5 sweep.
	SweepPoint = experiments.SweepPoint
	// ExperimentPlanners bundles the κ_n pair used by the harness.
	ExperimentPlanners = experiments.Planners
)

// NewExpertExperimentPlanners bundles the analytic experts as κ_n.
func NewExpertExperimentPlanners(sc Scenario) ExperimentPlanners {
	return experiments.ExpertPlanners(sc)
}

// NewTrainedExperimentPlanners imitation-trains the κ_n pair.
func NewTrainedExperimentPlanners(sc Scenario, seed int64) (ExperimentPlanners, error) {
	pl, err := experiments.TrainedPlanners(sc, seed)
	return pl, wrapErr(err)
}

// ReproduceTable1 regenerates Table I (conservative κ_n).
func ReproduceTable1(pl ExperimentPlanners, n int, seed int64) ([]TableRow, error) {
	rows, err := experiments.Table(experiments.Conservative, pl, n, seed)
	return rows, wrapErr(err)
}

// ReproduceTable2 regenerates Table II (aggressive κ_n).
func ReproduceTable2(pl ExperimentPlanners, n int, seed int64) ([]TableRow, error) {
	rows, err := experiments.Table(experiments.Aggressive, pl, n, seed)
	return rows, wrapErr(err)
}

// Validate sanity-checks a user-assembled simulation configuration.
func Validate(cfg SimConfig) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("safeplan: %w", err)
	}
	return nil
}

// Multi-vehicle API: the paper's system model includes messages from
// several other vehicles (§II-A, i = 1 … n−1); these entry points run the
// compound planner against a stream of oncoming vehicles crossing the
// conflict zone in sequence.
type (
	// MultiAgent is a closed-loop decision maker over several tracked
	// vehicles.
	MultiAgent = core.MultiAgent
	// MultiSimConfig extends SimConfig with the oncoming-stream layout.
	MultiSimConfig = sim.MultiConfig
	// MultiCompoundPlanner is the multi-vehicle κ_c.
	MultiCompoundPlanner = core.MultiCompound
)

// DefaultMultiSimConfig returns a three-vehicle stream over the standard
// evaluation defaults.
func DefaultMultiSimConfig() MultiSimConfig { return sim.DefaultMultiConfig() }

// BuildMultiPure wraps κ_n against the most constraining vehicle, with no
// safety machinery.
func BuildMultiPure(sc Scenario, kn Planner) MultiAgent {
	return &core.MultiPure{Cfg: sc, Planner: kn}
}

// BuildMultiBasic builds the multi-vehicle basic compound planner.
func BuildMultiBasic(sc Scenario, kn Planner) *MultiCompoundPlanner {
	return core.NewMultiBasic(sc, kn)
}

// BuildMultiUltimate builds the multi-vehicle ultimate compound planner.
func BuildMultiUltimate(sc Scenario, kn Planner) *MultiCompoundPlanner {
	return core.NewMultiUltimate(sc, kn)
}

// RunMultiEpisode simulates one episode against an oncoming stream.
// It accepts the same options as RunEpisode.
func RunMultiEpisode(cfg MultiSimConfig, agent MultiAgent, seed int64, opts ...RunOption) (EpisodeResult, error) {
	s, err := applySettings(opts)
	if err != nil {
		return EpisodeResult{}, err
	}
	s.attach(agent)
	s.applySim(&cfg.Config)
	r, err := sim.RunMulti(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return r, wrapErr(err)
}

// RunMultiCampaign simulates n seed-paired episodes against oncoming
// streams and aggregates the statistics.  It accepts the same options as
// RunCampaign.
func RunMultiCampaign(cfg MultiSimConfig, agent MultiAgent, n int, baseSeed int64, opts ...RunOption) (CampaignStats, error) {
	s, err := applySettings(opts)
	if err != nil {
		return CampaignStats{}, err
	}
	s.attach(agent)
	s.applySim(&cfg.Config)
	rs, err := sim.RunMultiCampaign(cfg, agent, n, sim.CampaignOptions{
		Options:  sim.Options{Collector: s.collector},
		BaseSeed: baseSeed,
		Workers:  s.workers,
	})
	if err != nil {
		return CampaignStats{}, wrapErr(err)
	}
	return eval.Aggregate(rs), nil
}

// Car-following case study (the paper's §II-A distance-gap unsafe set):
// a second scenario instantiating the same framework, demonstrating that
// the compound-planner construction is scenario-agnostic.
type (
	// CarFollowScenario is the car-following scenario configuration.
	CarFollowScenario = carfollow.Config
	// CarFollowSimConfig assembles a car-following campaign.
	CarFollowSimConfig = carfollow.SimConfig
	// CarFollowAgent is the closed-loop decision maker for car following.
	CarFollowAgent = carfollow.Agent
	// CarFollowPlanner is the planner abstraction for car following.
	CarFollowPlanner = carfollow.Planner
)

// DefaultCarFollowScenario returns the car-following constants.
func DefaultCarFollowScenario() CarFollowScenario { return carfollow.DefaultConfig() }

// DefaultCarFollowSimConfig returns the car-following campaign defaults.
func DefaultCarFollowSimConfig() CarFollowSimConfig { return carfollow.DefaultSimConfig() }

// NewCarFollowConservativeExpert returns the generous-headway cruise policy.
func NewCarFollowConservativeExpert(sc CarFollowScenario) CarFollowPlanner {
	return carfollow.ConservativeExpert(sc)
}

// NewCarFollowAggressiveExpert returns the tailgating cruise policy.
func NewCarFollowAggressiveExpert(sc CarFollowScenario) CarFollowPlanner {
	return carfollow.AggressiveExpert(sc)
}

// BuildCarFollowPure wraps a car-following κ_n with no safety machinery.
func BuildCarFollowPure(sc CarFollowScenario, kn CarFollowPlanner) CarFollowAgent {
	return &carfollow.Pure{Cfg: sc, Planner: kn}
}

// BuildCarFollowBasic builds the basic car-following compound planner.
func BuildCarFollowBasic(sc CarFollowScenario, kn CarFollowPlanner) CarFollowAgent {
	return carfollow.NewBasic(sc, kn)
}

// BuildCarFollowUltimate builds the ultimate car-following compound planner.
func BuildCarFollowUltimate(sc CarFollowScenario, kn CarFollowPlanner) CarFollowAgent {
	return carfollow.NewUltimate(sc, kn)
}

// RunCarFollowEpisode simulates one car-following episode.  It accepts
// the same options as RunEpisode.
func RunCarFollowEpisode(cfg CarFollowSimConfig, agent CarFollowAgent, seed int64, opts ...RunOption) (EpisodeResult, error) {
	s, err := applySettings(opts)
	if err != nil {
		return EpisodeResult{}, err
	}
	s.attach(agent)
	s.applyCarFollow(&cfg)
	r, err := carfollow.RunEpisode(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return r, wrapErr(err)
}

// RunCarFollowCampaign simulates n seed-paired car-following episodes and
// aggregates the statistics.  It accepts the same options as RunCampaign.
func RunCarFollowCampaign(cfg CarFollowSimConfig, agent CarFollowAgent, n int, baseSeed int64, opts ...RunOption) (CampaignStats, error) {
	s, err := applySettings(opts)
	if err != nil {
		return CampaignStats{}, err
	}
	s.attach(agent)
	s.applyCarFollow(&cfg)
	rs, err := carfollow.RunCampaign(cfg, agent, n, sim.CampaignOptions{
		Options:  sim.Options{Collector: s.collector},
		BaseSeed: baseSeed,
		Workers:  s.workers,
	})
	if err != nil {
		return CampaignStats{}, wrapErr(err)
	}
	return eval.Aggregate(rs), nil
}

// Platoon extension (the ReachMM platooning setting over the paper's
// §II-A unsafe set): an N-vehicle chain behind an exogenous stop-and-go
// head, one NN-controlled vehicle under the full κ_n/κ_e compound stack,
// analytic followers behind it, and a chained V2V link — channel, sensor
// stream, fusion filter, optional disturbance — per vehicle pair.  A
// two-vehicle platoon reproduces the car-following episode byte for byte
// at matched config and seed.
type (
	// PlatoonSimConfig assembles a platoon campaign.  It embeds
	// CarFollowSimConfig and adds the chain structure: vehicle count,
	// initial spacing, per-link channel and sensing overrides, and the
	// pairwise gap specification.
	PlatoonSimConfig = platoon.SimConfig
	// PlatoonGapSpec selects the pairwise unsafe-set variant.
	PlatoonGapSpec = platoon.GapSpec
	// PlatoonStringStability is the string-stability invariant: the peak
	// gap error must not amplify from each link to the next beyond the
	// configured tolerance.
	PlatoonStringStability = platoon.StringStability
)

// The pairwise gap specifications.
const (
	// PlatoonFixedGap is the paper's §II-A fixed distance-gap unsafe set
	// applied to every vehicle pair (the guaranteed variant).
	PlatoonFixedGap = platoon.FixedGap
	// PlatoonTimeGap is the ReachMM ACC requirement
	// Drel ≥ DDefault + TGap·v (scored, not guaranteed).
	PlatoonTimeGap = platoon.TimeGap
)

// DefaultPlatoonSimConfig returns the four-vehicle platoon defaults.
func DefaultPlatoonSimConfig() PlatoonSimConfig { return platoon.DefaultSimConfig() }

// RunPlatoonEpisode simulates one platoon episode.  The agent drives the
// NN-controlled vehicle and should be constructed against
// cfg.LinkScenario() so its monitoring matches the engine's.  It accepts
// the same options as RunEpisode.
func RunPlatoonEpisode(cfg PlatoonSimConfig, agent CarFollowAgent, seed int64, opts ...RunOption) (EpisodeResult, error) {
	s, err := applySettings(opts)
	if err != nil {
		return EpisodeResult{}, err
	}
	s.attach(agent)
	s.applyCarFollow(&cfg.SimConfig)
	r, err := platoon.RunEpisode(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return r, wrapErr(err)
}

// RunPlatoonCampaign simulates n seed-paired platoon episodes and
// aggregates the statistics.  It accepts the same options as RunCampaign.
func RunPlatoonCampaign(cfg PlatoonSimConfig, agent CarFollowAgent, n int, baseSeed int64, opts ...RunOption) (CampaignStats, error) {
	s, err := applySettings(opts)
	if err != nil {
		return CampaignStats{}, err
	}
	s.attach(agent)
	s.applyCarFollow(&cfg.SimConfig)
	rs, err := platoon.RunCampaign(cfg, agent, n, sim.CampaignOptions{
		Options:  sim.Options{Collector: s.collector},
		BaseSeed: baseSeed,
		Workers:  s.workers,
	})
	if err != nil {
		return CampaignStats{}, wrapErr(err)
	}
	return eval.Aggregate(rs), nil
}

// Session API: the closed Run* loops above are thin wrappers over
// resumable stepper engines that keep every piece of episode state —
// channel, filters, guard state machine, RNG streams — inside one object,
// so a caller (a streaming server, an interactive tool, a co-simulation)
// can drive episodes one control step at a time and inject externally
// streamed V2V messages and sensor readings between steps.  The serve
// vocabulary hosts many such engines as concurrent network sessions; see
// cmd/serve for the daemon and load generator.
type (
	// Stepper is the resumable left-turn episode engine.
	Stepper = sim.Stepper
	// MultiStepper is the resumable oncoming-stream episode engine.
	MultiStepper = sim.MultiStepper
	// CarFollowStepper is the resumable car-following episode engine.
	CarFollowStepper = carfollow.Stepper
	// StepInput carries externally streamed events into one engine step.
	StepInput = sim.StepInput
	// StepOutcome reports one engine step's observable state.
	StepOutcome = sim.StepOutcome

	// ServeConfig tunes the streaming session server (shards, admission
	// cap, mailbox bound, idle timeout).
	ServeConfig = serve.Config
	// Server hosts concurrent planner sessions over line-delimited JSON
	// and doubles as the /metrics + /healthz http.Handler.
	Server = serve.Server
	// ServerStats is the server's point-in-time counter snapshot.
	ServerStats = serve.Stats
	// SessionRequest is one line of the session protocol's client input.
	SessionRequest = serve.Request
	// SessionResponse is one line of the session protocol's server output.
	SessionResponse = serve.Response
	// SessionResult is the wire summary of a finished episode.
	SessionResult = serve.ResultSummary
)

// NewStepper builds a resumable left-turn episode engine.  It accepts the
// same options as RunEpisode; drive it with Step and settle it with
// Finish (mid-episode Finish yields the partial result).
func NewStepper(cfg SimConfig, agent Agent, seed int64, opts ...RunOption) (*Stepper, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	s.attach(agent)
	s.applySim(&cfg)
	st, err := sim.NewStepper(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return st, wrapErr(err)
}

// NewMultiStepper builds a resumable oncoming-stream episode engine.
func NewMultiStepper(cfg MultiSimConfig, agent MultiAgent, seed int64, opts ...RunOption) (*MultiStepper, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	s.attach(agent)
	s.applySim(&cfg.Config)
	st, err := sim.NewMultiStepper(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return st, wrapErr(err)
}

// NewCarFollowStepper builds a resumable car-following episode engine.
func NewCarFollowStepper(cfg CarFollowSimConfig, agent CarFollowAgent, seed int64, opts ...RunOption) (*CarFollowStepper, error) {
	s, err := applySettings(opts)
	if err != nil {
		return nil, err
	}
	s.attach(agent)
	s.applyCarFollow(&cfg)
	st, err := carfollow.NewStepper(cfg, agent, sim.Options{Seed: seed, Trace: s.trace, Collector: s.collector})
	return st, wrapErr(err)
}

// NewServer builds a streaming session server and starts its shard
// workers; call Serve (or ListenAndServe) to accept the session protocol,
// mount the Server on an http.Server for /metrics and /healthz, and Close
// to release it.
func NewServer(cfg ServeConfig) (*Server, error) {
	srv, err := serve.New(cfg)
	return srv, wrapErr(err)
}
