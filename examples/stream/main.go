// Oncoming stream: cross an unprotected left turn against a platoon of
// several oncoming vehicles under heavy communication disturbance — the
// multi-vehicle generalization of the paper's case study.  The compound
// planner tracks every vehicle independently (one information filter
// each), yields to each conflict in turn, and threads the first safe gap.
//
//	go run ./examples/stream [vehicles]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"safeplan"
)

func main() {
	log.SetFlags(0)
	vehicles := 3
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 {
			log.Fatalf("bad vehicle count %q", os.Args[1])
		}
		vehicles = v
	}

	scenario := safeplan.DefaultScenario()
	cfg := safeplan.DefaultMultiSimConfig()
	cfg.Vehicles = vehicles
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.Sensor = safeplan.UniformSensor(2)
	cfg.InfoFilter = true

	const episodes = 150
	fmt.Printf("%d oncoming vehicles, messages delayed 0.25 s + 50%% dropped, δ = 2\n\n", vehicles)
	fmt.Printf("%-34s %10s %8s %8s %9s\n", "agent", "reach [s]", "safe", "η", "emerg")
	for _, tc := range []struct {
		agent safeplan.MultiAgent
	}{
		{safeplan.BuildMultiPure(scenario, safeplan.NewAggressiveExpert(scenario))},
		{safeplan.BuildMultiBasic(scenario, safeplan.NewAggressiveExpert(scenario))},
		{safeplan.BuildMultiUltimate(scenario, safeplan.NewAggressiveExpert(scenario))},
		{safeplan.BuildMultiUltimate(scenario, safeplan.NewConservativeExpert(scenario))},
	} {
		st, err := safeplan.RunMultiCampaign(cfg, tc.agent, episodes, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %10.3f %7.1f%% %8.3f %8.2f%%\n",
			tc.agent.Name(), st.MeanReachTimeSafe, 100*st.SafeRate(),
			st.MeanEta, 100*st.EmergencyFreq)
	}
	fmt.Println("\nThe pure planner's collision risk compounds with every extra vehicle;")
	fmt.Println("the compound planners stay at 100% by monitoring each vehicle's window.")
}
