// Communication sweep: measure how message drop probability degrades the
// efficiency of the pure planner versus the compound planner — a compact
// version of the paper's Fig. 5c/5d experiment using the public API.
//
//	go run ./examples/commsweep [episodes-per-point]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"safeplan"
)

func main() {
	log.SetFlags(0)
	n := 150
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v <= 0 {
			log.Fatalf("bad episode count %q", os.Args[1])
		}
		n = v
	}

	scenario := safeplan.DefaultScenario()
	kn := safeplan.NewConservativeExpert(scenario)
	pure := safeplan.BuildPure(scenario, kn)
	ultimate := safeplan.BuildUltimate(scenario, kn)

	fmt.Printf("%-6s  %-28s  %-28s\n", "p_d", "pure κ_n", "ultimate κ_c")
	fmt.Printf("%-6s  %-28s  %-28s\n", "", "reach [s]   safe    η", "reach [s]   safe    η")
	for pd := 0.0; pd <= 0.95; pd += 0.19 {
		cfg := safeplan.DefaultSimConfig()
		cfg.Comms = safeplan.DelayedComms(0.25, pd)

		ps, err := safeplan.RunCampaign(cfg, pure, n, 42)
		if err != nil {
			log.Fatal(err)
		}
		ultCfg := cfg
		ultCfg.InfoFilter = true
		us, err := safeplan.RunCampaign(ultCfg, ultimate, n, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %6.3f   %5.1f%%  %6.3f      %6.3f   %5.1f%%  %6.3f\n",
			pd,
			ps.MeanReachTimeSafe, 100*ps.SafeRate(), ps.MeanEta,
			us.MeanReachTimeSafe, 100*us.SafeRate(), us.MeanEta)
	}
	fmt.Println("\nThe compound planner stays 100% safe and faster at every disturbance level;")
	fmt.Println("both degrade as more messages are lost (the paper's Fig. 5c).")
}
