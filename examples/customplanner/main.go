// Custom planner: the framework wraps *any* planner — here a deliberately
// dangerous hand-written policy and an imitation-trained neural network —
// and guarantees safety for both.  This demonstrates the paper's headline
// claim: the compound planner construction is planner-agnostic.
//
//	go run ./examples/customplanner
package main

import (
	"fmt"
	"log"
	"math"

	"safeplan"
)

func main() {
	log.SetFlags(0)
	scenario := safeplan.DefaultScenario()
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	const episodes = 200

	// A hand-written planner that ignores the oncoming window half the
	// time — the kind of policy that must never be deployed bare.
	reckless := safeplan.PlannerFunc{
		PlannerName: "reckless",
		F: func(t float64, ego safeplan.VehicleState, w safeplan.Interval) float64 {
			if math.Mod(t, 2) < 1 || w.IsEmpty() {
				return scenario.Ego.AMax // full throttle, conflict or not
			}
			// The other half of the time: a mild yield.
			return -1
		},
	}

	// An imitation-trained NN planner (small budget so the example runs in
	// seconds; cmd/train builds the full-quality models).
	nn, loss, err := safeplan.TrainPlanner(scenario, safeplan.NewConservativeExpert(scenario),
		"nn-demo", safeplan.TrainOptions{Samples: 6000, Epochs: 15, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained nn-demo: imitation loss %.3f\n\n", loss)

	fmt.Printf("%-12s %-10s %10s %8s %8s %10s\n",
		"planner", "design", "reach [s]", "safe", "η", "emerg")
	for _, kn := range []safeplan.Planner{reckless, nn} {
		for _, design := range []string{"pure", "compound"} {
			runCfg := cfg
			var agent safeplan.Agent
			if design == "pure" {
				agent = safeplan.BuildPure(scenario, kn)
			} else {
				agent = safeplan.BuildUltimate(scenario, kn)
				runCfg.InfoFilter = true
			}
			st, err := safeplan.RunCampaign(runCfg, agent, episodes, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %-10s %10.3f %7.1f%% %8.3f %9.2f%%\n",
				kn.Name(), design, st.MeanReachTimeSafe, 100*st.SafeRate(),
				st.MeanEta, 100*st.EmergencyFreq)
		}
	}
	fmt.Println("\nBoth planners are 100% safe once wrapped — the monitor and emergency")
	fmt.Println("planner bound the damage any κ_n can do (paper §III-E).")
}
