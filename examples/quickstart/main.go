// Quickstart: wrap a planner in the safety-guaranteed compound planner and
// run one unprotected-left-turn episode under message delay and drop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"safeplan"
)

func main() {
	log.SetFlags(0)

	// 1. The scenario: the paper's unprotected left turn (conflict zone at
	//    5–15 m on each vehicle's path, ego starting 35 m out).
	scenario := safeplan.DefaultScenario()

	// 2. An embedded planner κ_n.  Here the conservative analytic expert;
	//    see examples/customplanner for bringing your own, or cmd/train for
	//    imitation-training a neural-network planner.
	kn := safeplan.NewConservativeExpert(scenario)

	// 3. The compound planner κ_c: runtime monitor + emergency planner +
	//    aggressive unsafe-set estimation.  Safety is guaranteed no matter
	//    what κ_n outputs.
	agent := safeplan.BuildUltimate(scenario, kn)

	// 4. A communication setting: every V2V message delayed by 0.25 s and
	//    dropped with probability 0.3, sensors noisy by ±1 unit.
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.3)
	cfg.Sensor = safeplan.UniformSensor(1)
	cfg.InfoFilter = true // pair the ultimate design with the information filter

	// 5. Run one episode.
	result, err := safeplan.RunEpisode(cfg, agent, 1)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case result.Collided:
		fmt.Println("collision — this cannot happen with a compound planner")
	case result.Reached:
		fmt.Printf("completed the left turn in %.2f s (η = %.4f)\n", result.ReachTime, result.Eta)
	default:
		fmt.Println("timed out waiting for a gap")
	}
	fmt.Printf("emergency planner active on %.1f%% of control steps\n",
		100*result.EmergencyFrequency())

	// 6. A quick campaign: 200 episodes, aggregated like the paper's tables.
	stats, err := safeplan.RunCampaign(cfg, agent, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d episodes, safe rate %.1f%%, mean reaching time %.2f s, mean η %.3f\n",
		stats.N, 100*stats.SafeRate(), stats.MeanReachTimeSafe, stats.MeanEta)
}
