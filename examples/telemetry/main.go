// Telemetry: attach a metrics collector to a campaign and dump what the
// safety machinery actually did — how often the runtime monitor selected
// the emergency planner κ_e (and why), how much the information filter
// tightened the estimate over the sound one, how much passing-window
// width the Eq. 8 aggressive estimation won back for κ_n, and how long
// each planner decision took.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"

	"safeplan"
)

func main() {
	log.SetFlags(0)

	scenario := safeplan.DefaultScenario()
	agent := safeplan.BuildUltimate(scenario, safeplan.NewAggressiveExpert(scenario))

	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)
	cfg.InfoFilter = true

	// One Metrics collector absorbs probes from every campaign worker;
	// the ProgressFunc rides along to draw a progress line.
	metrics := safeplan.NewMetrics()
	progress := safeplan.ProgressFunc(func(done, total int64) {
		if done%64 == 0 || done == total {
			fmt.Printf("\r%d/%d episodes", done, total)
		}
	})

	stats, err := safeplan.RunCampaign(cfg, agent, 256, 1,
		safeplan.WithCollector(safeplan.MultiCollector(metrics, progress)),
		safeplan.WithWorkers(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\rcampaign: safe rate %.1f%%, mean η %.3f\n\n", 100*stats.SafeRate(), stats.MeanEta)

	snap := metrics.Snapshot()
	fmt.Println("--- text dump ---")
	fmt.Print(snap.Text())

	out, err := snap.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- JSON dump ---")
	fmt.Println(string(out))
}
