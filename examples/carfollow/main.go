// Car following: the second case study — the paper's §II-A distance-gap
// unsafe set.  A tailgating planner follows a stop-and-go lead vehicle
// through communication disturbance; bare, it rear-ends the lead when a
// hard brake coincides with dropped messages; wrapped in the compound
// planner it never violates the gap.
//
//	go run ./examples/carfollow
package main

import (
	"fmt"
	"log"

	"safeplan"
)

func main() {
	log.SetFlags(0)
	scenario := safeplan.DefaultCarFollowScenario()
	tailgater := safeplan.NewCarFollowAggressiveExpert(scenario)
	cruiser := safeplan.NewCarFollowConservativeExpert(scenario)

	cfg := safeplan.DefaultCarFollowSimConfig()
	cfg.Comms = safeplan.LostComms() // sensors only
	cfg.Sensor = safeplan.UniformSensor(2)

	const episodes = 200
	fmt.Println("car following, 400 m course, stop-and-go lead, sensors only (δ = 2)")
	fmt.Printf("\n%-30s %10s %8s %9s\n", "agent", "reach [s]", "safe", "emerg")
	for _, tc := range []struct {
		agent safeplan.CarFollowAgent
		info  bool
	}{
		{safeplan.BuildCarFollowPure(scenario, tailgater), false},
		{safeplan.BuildCarFollowBasic(scenario, tailgater), false},
		{safeplan.BuildCarFollowUltimate(scenario, tailgater), true},
		{safeplan.BuildCarFollowUltimate(scenario, cruiser), true},
	} {
		run := cfg
		run.InfoFilter = tc.info
		st, err := safeplan.RunCarFollowCampaign(run, tc.agent, episodes, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %10.2f %7.1f%% %8.2f%%\n",
			tc.agent.Name(), st.MeanReachTimeSafe, 100*st.SafeRate(), 100*st.EmergencyFreq)
	}
	fmt.Println("\nSame framework, different scenario: the monitor's one-step worst-case")
	fmt.Println("lookahead plus maximum-braking κ_e guarantee the gap (paper Eq. 3–4).")
}
