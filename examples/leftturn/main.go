// Left-turn walkthrough: run the same episode with the pure aggressive
// planner and with its compound (ultimate) wrapper, then print an ASCII
// strip chart of both trajectories showing where the runtime monitor and
// emergency planner intervened.
//
//	go run ./examples/leftturn [seed]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"safeplan"
)

func main() {
	log.SetFlags(0)
	seed := int64(17)
	if len(os.Args) > 1 {
		v, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
		seed = v
	}

	scenario := safeplan.DefaultScenario()
	kn := safeplan.NewAggressiveExpert(scenario)
	cfg := safeplan.DefaultSimConfig()
	cfg.Comms = safeplan.DelayedComms(0.25, 0.5)

	pure, err := safeplan.RunEpisode(cfg, safeplan.BuildPure(scenario, kn), seed, safeplan.WithTrace())
	if err != nil {
		log.Fatal(err)
	}
	ultCfg := cfg
	ultCfg.InfoFilter = true
	comp, err := safeplan.RunEpisode(ultCfg, safeplan.BuildUltimate(scenario, kn), seed, safeplan.WithTrace())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("seed %d, aggressive κ_n, messages delayed (Δt_d=0.25 s, p_d=0.5)\n\n", seed)
	describe := func(name string, r safeplan.EpisodeResult) {
		switch {
		case r.Collided:
			fmt.Printf("%-22s COLLISION after %d steps (η = %.0f)\n", name, r.Steps, r.Eta)
		case r.Reached:
			fmt.Printf("%-22s reached in %.2f s (η = %.4f), emergency %.1f%% of steps\n",
				name, r.ReachTime, r.Eta, 100*r.EmergencyFrequency())
		default:
			fmt.Printf("%-22s timeout\n", name)
		}
	}
	describe("pure κ_n:", pure)
	describe("compound κ_c:", comp)

	fmt.Println("\ntrajectory strip (one column per 0.25 s; E marks emergency-planner steps):")
	fmt.Println(strip("pure ego   ", pure, scenario, false))
	fmt.Println(strip("compound   ", comp, scenario, true))
	fmt.Println(strip("oncoming   ", comp, scenario, false, true))
	fmt.Println("\nlegend: . approach   [ zone entry .. ] zone exit   * inside conflict zone")
}

// strip renders a coarse timeline of positions relative to the conflict
// zone.  With markEmergency, steps under κ_e show as E.
func strip(label string, r safeplan.EpisodeResult, sc safeplan.Scenario, markEmergency bool, oncoming ...bool) string {
	var b strings.Builder
	b.WriteString(label)
	const every = 5 // one column per 5 control steps (0.25 s)
	for i := 0; i < len(r.Trace); i += every {
		s := r.Trace[i]
		p := s.EgoP
		if len(oncoming) > 0 && oncoming[0] {
			p = s.OncP
		}
		var ch byte
		switch {
		case p < sc.Geometry.PF:
			ch = '.'
		case p <= sc.Geometry.PB:
			ch = '*'
		default:
			ch = ' '
		}
		if markEmergency && s.Emergency {
			ch = 'E'
		}
		b.WriteByte(ch)
	}
	return b.String()
}
